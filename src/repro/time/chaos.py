"""Seeded clock-fault schedules for senders and transports.

A :class:`ClockSchedule` is a pure function of the true timestamp: the
same record always warps to the same faulty time no matter how pulls are
batched or how often a crashed sender replays it.  That purity is what
lets the clock soak demand byte-identical sealed chunks across
kill/restart — the fault injection itself introduces no nondeterminism.

Schedules model the four real-world clock fault families:

* ``drift``  — constant frequency error of ``ppm`` starting at ``start_ns``.
* ``ramp``   — drift that ramps linearly from 0 to ``ppm`` over
  ``ramp_ns`` (a warming oscillator), then holds.
* ``step``   — an NTP-style step of ``step_ns`` (either sign) at
  ``start_ns``.
* ``freeze`` — the clock reads ``start_ns`` for ``freeze_ns`` (forever
  when 0), then resumes with the true clock.

Injection points:

* :class:`ClockChaos` warps :class:`~repro.ingest.records.TelemetryRecord`
  timestamps per stream — handed to ``RecordSender(clock_chaos=...)`` so
  faults originate at the remote sender, upstream of framing, exactly
  where real clock faults live.
* :class:`ClockChaosTransport` wraps any pull transport (usually
  :class:`~repro.ingest.feed.SimTransport`) for in-process tests, with
  snapshot/restore delegation so it rides the watermark ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # runtime-import-free: repro.ingest imports repro.collector,
    # whose chaos module imports this one — a cycle unless the record type
    # stays annotation-only (dataclasses.replace works on any instance).
    from repro.ingest.records import TelemetryRecord

SCHEDULE_KINDS = ("drift", "ramp", "step", "freeze")


@dataclass(frozen=True)
class ClockSchedule:
    """One sender's clock-fault trajectory, as a pure warp of true time."""

    kind: str
    #: When the fault engages, in true-clock nanoseconds.
    start_ns: int = 0
    #: Frequency error for ``drift``/``ramp``.
    ppm: float = 0.0
    #: Ramp duration for ``ramp``.
    ramp_ns: int = 0
    #: Step size (signed) for ``step``.
    step_ns: int = 0
    #: Freeze duration for ``freeze`` (0 = frozen forever).
    freeze_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise ConfigurationError(f"unknown clock schedule kind {self.kind!r}")
        if self.start_ns < 0:
            raise ConfigurationError(f"start_ns must be >= 0: {self.start_ns}")
        if self.kind == "ramp" and self.ramp_ns <= 0:
            raise ConfigurationError("ramp schedules need a positive ramp_ns")
        if self.kind == "step" and self.step_ns == 0:
            raise ConfigurationError("step schedules need a non-zero step_ns")
        if self.freeze_ns < 0:
            raise ConfigurationError(f"freeze_ns must be >= 0: {self.freeze_ns}")

    def warp(self, t_ns: int) -> int:
        """Faulty clock reading for true time ``t_ns``."""
        if t_ns < self.start_ns:
            return t_ns
        dt = t_ns - self.start_ns
        if self.kind == "drift":
            return t_ns + int(dt * self.ppm / 1e6)
        if self.kind == "ramp":
            # Frequency error grows linearly from 0 to ppm over ramp_ns;
            # the accumulated offset is the integral of that frequency.
            if dt <= self.ramp_ns:
                return t_ns + int(self.ppm / 1e6 * dt * dt / (2.0 * self.ramp_ns))
            settled = self.ppm / 1e6 * (self.ramp_ns / 2.0 + (dt - self.ramp_ns))
            return t_ns + int(settled)
        if self.kind == "step":
            return t_ns + self.step_ns
        # freeze
        if self.freeze_ns == 0 or dt < self.freeze_ns:
            return self.start_ns
        return t_ns

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "start_ns": self.start_ns,
            "ppm": self.ppm,
            "ramp_ns": self.ramp_ns,
            "step_ns": self.step_ns,
            "freeze_ns": self.freeze_ns,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClockSchedule":
        return cls(**payload)


class ClockChaos:
    """Per-stream clock schedules applied to telemetry records."""

    def __init__(self, schedules: Mapping[str, ClockSchedule]) -> None:
        self.schedules: Dict[str, ClockSchedule] = dict(schedules)

    def schedule_for(self, stream: str) -> Optional[ClockSchedule]:
        return self.schedules.get(stream)

    def warp_record(self, record: TelemetryRecord) -> TelemetryRecord:
        """Warp one record's timestamps through its stream's schedule.

        Hop records carry ``(arrival_ns, read_ns)`` in ``data`` with the
        departure in ``time_ns``; all three come off the same host clock,
        so all three warp.  Freezes can collapse the ordering, so the
        warped triple is re-clamped to ``0 <= arrival <= read <= depart``
        — a faulty clock must still produce structurally valid records,
        or the fault would be rejected at parse time instead of reaching
        the clock models it is meant to exercise.
        """
        schedule = self.schedules.get(record.stream)
        if schedule is None:
            return record
        depart = schedule.warp(record.time_ns)
        if record.kind == "hop" and len(record.data) >= 2:
            arrival = schedule.warp(record.data[0])
            read = schedule.warp(record.data[1])
            read = min(read, depart)
            arrival = max(0, min(arrival, read))
            data = (arrival, read) + tuple(record.data[2:])
            return replace(record, time_ns=max(0, depart), data=data)
        return replace(record, time_ns=max(0, depart))

    def warp_batch(
        self, records: Sequence[TelemetryRecord]
    ) -> List[TelemetryRecord]:
        return [self.warp_record(record) for record in records]


class ClockChaosTransport:
    """Wrap a pull transport, warping record timestamps on the way out.

    Structurally transparent: delegates stream topology, EOS, reset and
    reconnection to the inner transport, and snapshots as a tagged
    wrapper around the inner transport's state so crash/restore replays
    the identical warped stream.
    """

    def __init__(self, inner, chaos: ClockChaos) -> None:
        self.inner = inner
        self.chaos = chaos

    @property
    def can_backpressure(self) -> bool:
        return getattr(self.inner, "can_backpressure", False)

    def streams(self) -> List[str]:
        return self.inner.streams()

    def pull(self, stream: str, max_records: int) -> List[TelemetryRecord]:
        return self.chaos.warp_batch(self.inner.pull(stream, max_records))

    def at_eos(self, stream: str) -> bool:
        return self.inner.at_eos(stream)

    def reset(self) -> None:
        self.inner.reset()

    def reconnect(self) -> None:
        reconnect = getattr(self.inner, "reconnect", None)
        if reconnect is not None:
            reconnect()

    def snapshot_state(self) -> dict:
        from repro.ingest.watermark import capture_transport_state

        return {"kind": "clock-chaos", "inner": capture_transport_state(self.inner)}

    def restore_state(self, state: dict) -> None:
        from repro.ingest.watermark import restore_transport_state

        restore_transport_state(self.inner, state["inner"])
