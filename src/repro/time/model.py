"""Online per-stream clock models: offset + drift + uncertainty.

This is the streaming upgrade of :mod:`repro.collector.clock`'s static
min-filter estimator.  The offline estimator sees the whole run and takes
one global minimum per edge; here the same Huygens-style observation —
every matched (TX at ``u``, RX at ``v``) pair satisfies

    rx_local - tx_ref = propagation + queueing + offset_v(t)

with queueing >= 0 — is tracked *online* as a lower envelope over time
windows: per window of RX-local time, the minimum observed difference
approaches ``propagation + offset_v(t)``, and a least-squares line
through the retained window minima yields the stream's current offset
*and drift* relative to the reference plane the already-repaired
upstream records define.

Three deliberate asymmetries versus the offline estimator:

* **The first healthy window is the baseline.**  A constant initial
  offset is indistinguishable from propagation delay without the known
  ``edge.delay_ns`` the offline path has, so the online model estimates
  offset *change* since its baseline window — exactly what the clock
  fault families (drift, ramp, NTP step, freeze) produce, and exactly
  what is needed to keep a long-running stream consistent with its own
  start.
* **State is a pure function of the stream's own record prefix.**
  Models mutate only when a record of their stream is admitted, in
  sequence order, and pair observations read (never write) the upstream
  stream's already-repaired times.  Repairs therefore do not depend on
  transport batching, which is what keeps sealed chunks byte-identical
  across crash/restart and across socket-timing variation.
* **Faults are typed events, not exceptions.**  A detected step, freeze
  or out-of-bound drift becomes a :class:`ClockFault`; the ingest
  builder turns it into a ``clock`` telemetry gap plus a multiplicative
  confidence discount, and (for freezes) quarantines the stream through
  the PR-3 machinery.  Degraded clocks degrade *confidence*, never
  silently corrupt attribution.

Everything is pure ints/floats/lists, so a :class:`ClockBank` rides the
watermark-snapshot ladder unchanged (see
:func:`repro.ingest.watermark.capture_builder_state`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, TraceError

#: Typed clock-fault kinds, mirroring the chaos families that cause them.
FAULT_KINDS = ("step-forward", "step-back", "freeze", "drift")


@dataclass(frozen=True)
class ClockConfig:
    """Operating parameters of the per-stream clock models."""

    #: Lower-envelope window width, in RX-local nanoseconds.  Should span
    #: enough matched pairs that the per-window minimum reaches the
    #: queueing floor (empty-queue forwardings are common, so a few
    #: hundred pairs per window suffices).
    window_ns: int = 5_000_000
    #: Retained window minima the offset/drift line is fitted over.
    windows: int = 8
    #: A window with fewer matched pairs than this is discarded — its
    #: minimum never reached the queueing floor and would bias the fit.
    min_window_samples: int = 3
    #: Estimated offsets below this magnitude repair to zero, so a
    #: healthy stream's envelope jitter never perturbs timestamps (the
    #: clean-clock byte-identity invariant).
    deadband_ns: int = 50_000
    #: Fitted drift beyond this magnitude raises a ``drift`` fault (the
    #: stream keeps flowing, repaired, at discounted confidence).
    drift_tolerance_ppm: float = 200.0
    #: An envelope jump beyond ``step_tolerance_ns`` past the fit's own
    #: residual raises a step fault and rebases the envelope; a raw
    #: per-record time regression of the same magnitude raises
    #: ``step-back`` directly.
    step_tolerance_ns: int = 2_000_000
    #: Consecutive identical raw timestamps (with advancing sequence
    #: numbers) before the stream's clock counts as frozen.  Clean traces
    #: legitimately repeat a timestamp across a queue-drain or drop burst
    #: (runs of tens of records), so the threshold must sit well above
    #: burst scale; a truly frozen clock stamps *everything* identically
    #: and crosses any threshold within milliseconds of traffic.
    freeze_records: int = 512
    #: Quarantine a frozen stream through the telemetry-health machinery
    #: (its timestamps carry no information; holding the barrier for it
    #: would stall sealing forever).
    freeze_quarantines: bool = True
    #: Multiplicative per-fault confidence discounts: drift is repairable
    #: so it discounts mildly; steps and freezes discount hard.
    drift_discount: float = 0.9
    fault_discount: float = 0.5

    def __post_init__(self) -> None:
        if self.window_ns <= 0:
            raise ConfigurationError(f"window_ns must be positive: {self.window_ns}")
        if self.windows < 2:
            raise ConfigurationError(f"windows must be >= 2: {self.windows}")
        if self.min_window_samples < 1:
            raise ConfigurationError(
                f"min_window_samples must be >= 1: {self.min_window_samples}"
            )
        if self.deadband_ns < 0:
            raise ConfigurationError(f"deadband_ns must be >= 0: {self.deadband_ns}")
        if self.step_tolerance_ns <= 0:
            raise ConfigurationError(
                f"step_tolerance_ns must be positive: {self.step_tolerance_ns}"
            )
        if self.freeze_records < 2:
            raise ConfigurationError(
                f"freeze_records must be >= 2: {self.freeze_records}"
            )
        for name, value in (
            ("drift_discount", self.drift_discount),
            ("fault_discount", self.fault_discount),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def to_payload(self) -> dict:
        return {
            "window_ns": self.window_ns,
            "windows": self.windows,
            "min_window_samples": self.min_window_samples,
            "deadband_ns": self.deadband_ns,
            "drift_tolerance_ppm": self.drift_tolerance_ppm,
            "step_tolerance_ns": self.step_tolerance_ns,
            "freeze_records": self.freeze_records,
            "freeze_quarantines": self.freeze_quarantines,
            "drift_discount": self.drift_discount,
            "fault_discount": self.fault_discount,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClockConfig":
        return cls(**payload)


@dataclass(frozen=True)
class ClockFault:
    """One detected clock anomaly on one stream.

    ``magnitude`` is kind-specific: the step size in nanoseconds for
    steps, the fitted drift in ppm for ``drift``, and the identical-
    timestamp run length for ``freeze``.  ``at_ns`` is the stream-local
    timestamp of the record that triggered detection.
    """

    stream: str
    kind: str
    at_ns: int
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise TraceError(f"unknown clock fault kind {self.kind!r}")

    def to_payload(self) -> list:
        return [self.stream, self.kind, self.at_ns, self.magnitude]

    @classmethod
    def from_payload(cls, payload) -> "ClockFault":
        stream, kind, at_ns, magnitude = payload
        return cls(
            stream=stream, kind=kind, at_ns=int(at_ns), magnitude=float(magnitude)
        )


def fit_lower_envelope(
    points: List[Tuple[int, float]],
) -> Tuple[int, float, float, float]:
    """Least-squares line through envelope minima.

    ``points`` is a non-empty list of ``(t_ns, min_diff)`` window minima.
    Returns ``(t_ref_ns, offset_at_ref, drift_ppm, residual_ns)`` where
    ``t_ref_ns`` is the newest point's time (so extrapolation error stays
    small at the live edge) and ``residual_ns`` is the largest absolute
    deviation of any point from the fitted line — the data-driven half of
    the stream's uncertainty bound.

    Pure Python floats in a fixed summation order: deterministic, and the
    values round-trip exactly through JSON snapshots.
    """
    if not points:
        raise TraceError("cannot fit an empty envelope")
    t_ref = points[-1][0]
    if len(points) == 1:
        return (t_ref, float(points[0][1]), 0.0, 0.0)
    xs = [float(t - t_ref) for t, _ in points]
    ys = [float(y) for _, y in points]
    n = float(len(points))
    sx = sum(xs)
    sy = sum(ys)
    sxx = sum(x * x for x in xs)
    sxy = sum(x * y for x, y in zip(xs, ys))
    denom = n * sxx - sx * sx
    if denom == 0.0:
        slope = 0.0
        intercept = sy / n
    else:
        slope = (n * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / n
    residual = max(abs(y - (intercept + slope * x)) for x, y in zip(xs, ys))
    return (t_ref, intercept, slope * 1e6, residual)


class StreamClockModel:
    """One stream's clock relative to the reference plane.

    Mutated only from the stream's own admitted records, in sequence
    order: :meth:`observe_local` on every record (freeze and raw-step
    detection), :meth:`observe_pair` on every matched edge pair (envelope
    + fit).  :meth:`offset_at` and :attr:`uncertainty_ns` are read-only
    queries used for repair and for widening the sealing barrier.
    """

    def __init__(self, stream: str, config: ClockConfig) -> None:
        self.stream = stream
        self.config = config
        # Raw-timestamp bookkeeping (freeze / backward-step detection).
        self.last_raw = -1
        self.raw_max = -1
        self.freeze_run = 1
        self.frozen = False
        self.in_back_step = False
        #: Most recent positive raw inter-record gap — the stream's
        #: cadence, used to de-bias the backward-step estimator (see
        #: :meth:`observe_local`).
        self.last_gap = 0
        # Lower envelope over RX-local windows.
        self.pairs = 0
        self.baseline: Optional[int] = None
        self.cur_window: Optional[int] = None
        self.cur_min = 0
        self.cur_count = 0
        #: Retained ``(window_center_ns, min_diff - baseline)`` points.
        self.minima: List[Tuple[int, float]] = []
        # Fit state (valid once ``have_fit``).
        self.have_fit = False
        self.fit_t = 0
        self.fit_offset = 0.0
        self.fit_drift_ppm = 0.0
        self.fit_residual = 0.0
        self.drift_faulted = False
        #: Provisional offset applied between a raw backward-step
        #: detection and the envelope's own rebase.  The step magnitude
        #: is directly observable at detection (``raw_max - raw``), so
        #: repair engages immediately instead of clamping a whole step's
        #: worth of records flat; once the envelope rebases onto the
        #: post-step level its fit owns the full offset and this resets.
        self.step_offset_ns = 0
        #: Extra uncertainty carried after a step fault, halved on every
        #: clean window so the barrier relaxes as the envelope restabilises.
        self.step_cover_ns = 0
        self.updates = 0
        self.faults = 0

    # -- observation ------------------------------------------------------------

    def observe_local(self, raw_ns: int) -> List[Tuple[str, float]]:
        """Per-record raw-timestamp observation; returns (kind, magnitude)."""
        faults: List[Tuple[str, float]] = []
        if self.last_raw < 0:
            self.last_raw = raw_ns
            self.raw_max = raw_ns
            return faults
        if raw_ns == self.last_raw:
            self.freeze_run += 1
            if not self.frozen and self.freeze_run >= self.config.freeze_records:
                self.frozen = True
                self.faults += 1
                faults.append(("freeze", float(self.freeze_run)))
        else:
            self.freeze_run = 1
        if raw_ns >= self.raw_max:
            if raw_ns > self.last_raw and not self.in_back_step:
                self.last_gap = raw_ns - self.last_raw
            self.raw_max = raw_ns
            self.in_back_step = False
        elif (
            self.raw_max - raw_ns >= self.config.step_tolerance_ns
            and not self.in_back_step
        ):
            # The local clock regressed past jitter scale: an NTP-style
            # backward step.  Latched until the clock re-passes its old
            # maximum, so one step fires one fault, not one per record.
            # ``raw_max - raw`` under-measures the step by exactly the
            # true-time gap between the last pre-step record and this
            # one; the stream's own cadence (``last_gap``) de-biases it.
            # Without the de-bias every repaired timestamp sits one
            # cadence early, which systematically collides repaired hops
            # into their packets' source emits in the global merge.
            self.in_back_step = True
            self.faults += 1
            magnitude = float(self.raw_max - raw_ns + self.last_gap)
            self.step_offset_ns -= int(magnitude)
            self.step_cover_ns = max(
                self.step_cover_ns, self.config.step_tolerance_ns
            )
            faults.append(("step-back", magnitude))
        self.last_raw = raw_ns
        return faults

    def observe_pair(self, tx_ref_ns: int, rx_raw_ns: int) -> List[Tuple[str, float]]:
        """One matched edge pair: RX-local time vs the (repaired) TX time."""
        self.pairs += 1
        diff = rx_raw_ns - tx_ref_ns
        window = rx_raw_ns // self.config.window_ns
        if self.cur_window is None:
            self.cur_window, self.cur_min, self.cur_count = window, diff, 1
            return []
        if window <= self.cur_window:
            regression = self.cur_window * self.config.window_ns - rx_raw_ns
            if regression <= self.config.step_tolerance_ns:
                # Same window, or mild regression (arrivals are observed
                # in depart order, so queueing reorders them by up to the
                # queueing delay): fold into the open window — a lower
                # envelope only cares about the minimum.
                if diff < self.cur_min:
                    self.cur_min = diff
                self.cur_count += 1
                return []
            # Deep regression: the RX clock stepped backward.  Close the
            # pre-step window and restart at the regressed index so the
            # post-step level finalizes (and rebases the fit) within one
            # window instead of festering in a never-advancing fold.
        faults = self._finalize_window()
        self.cur_window, self.cur_min, self.cur_count = window, diff, 1
        return faults

    def _finalize_window(self) -> List[Tuple[str, float]]:
        faults: List[Tuple[str, float]] = []
        if self.cur_count < self.config.min_window_samples:
            return faults  # too thin to have reached the queueing floor
        center = self.cur_window * self.config.window_ns + self.config.window_ns // 2
        if self.baseline is None:
            # First healthy window: absorbs propagation + initial offset.
            self.baseline = self.cur_min
            self.minima = [(center, 0.0)]
        else:
            rel = float(self.cur_min - self.baseline)
            if self.have_fit:
                predicted = self._predict(center)
                jump = rel - predicted
                if abs(jump) > self.config.step_tolerance_ns + self.fit_residual:
                    kind = "step-forward" if jump > 0 else "step-back"
                    if not (kind == "step-back" and self.step_offset_ns != 0):
                        # A pending provisional offset means the local
                        # raw-regression detector already reported this
                        # step; the envelope is confirming, not finding.
                        self.faults += 1
                        faults.append((kind, jump))
                    # Rebase: the new level is the stream's new offset, and
                    # the jump magnitude rides the uncertainty bound until
                    # the envelope restabilises.  The rebased fit measures
                    # the *total* raw-clock offset, step included, so any
                    # provisional step offset must not double-count.
                    self.minima = [(center, rel)]
                    self.step_offset_ns = 0
                    self.step_cover_ns = int(abs(jump)) + self.config.step_tolerance_ns
                else:
                    self.minima.append((center, rel))
                    if len(self.minima) > self.config.windows:
                        self.minima = self.minima[-self.config.windows :]
                    self.step_cover_ns //= 2
            else:
                self.minima.append((center, rel))
        (
            self.fit_t,
            self.fit_offset,
            self.fit_drift_ppm,
            self.fit_residual,
        ) = fit_lower_envelope(self.minima)
        self.have_fit = True
        self.updates += 1
        if (
            not self.drift_faulted
            and abs(self.fit_drift_ppm) > self.config.drift_tolerance_ppm
            and len(self.minima) >= 2
        ):
            self.drift_faulted = True
            self.faults += 1
            faults.append(("drift", self.fit_drift_ppm))
        return faults

    # -- queries ----------------------------------------------------------------

    def _predict(self, raw_ns: int) -> float:
        return self.fit_offset + self.fit_drift_ppm * (raw_ns - self.fit_t) / 1e6

    def offset_at(self, raw_ns: int) -> int:
        """Estimated local-minus-reference offset at ``raw_ns`` (0 in the
        deadband, so clean clocks repair to identity)."""
        estimate = float(self.step_offset_ns)
        if self.have_fit:
            estimate += self._predict(raw_ns)
        if abs(estimate) <= self.config.deadband_ns and self.step_cover_ns == 0:
            return 0
        return int(round(estimate))

    @property
    def uncertainty_ns(self) -> int:
        """How far the true offset may sit from the estimate.

        Zero until a repair is actually engaged — an idle model must not
        move the sealing barrier — then the fit residual plus the
        deadband, plus any post-step cover.
        """
        residual = int(round(self.fit_residual)) if self.have_fit else 0
        if self.step_cover_ns or self.step_offset_ns:
            return residual + self.config.deadband_ns + self.step_cover_ns
        if not self.have_fit:
            return 0
        if (
            abs(self._predict(self.fit_t)) <= self.config.deadband_ns
            and abs(self.fit_drift_ppm) <= self.config.drift_tolerance_ppm
        ):
            return 0
        return residual + self.config.deadband_ns

    # -- snapshot ---------------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "stream": self.stream,
            "last_raw": self.last_raw,
            "raw_max": self.raw_max,
            "freeze_run": self.freeze_run,
            "frozen": self.frozen,
            "in_back_step": self.in_back_step,
            "last_gap": self.last_gap,
            "pairs": self.pairs,
            "baseline": self.baseline,
            "cur_window": self.cur_window,
            "cur_min": self.cur_min,
            "cur_count": self.cur_count,
            "minima": [[t, y] for t, y in self.minima],
            "have_fit": self.have_fit,
            "fit_t": self.fit_t,
            "fit_offset": self.fit_offset,
            "fit_drift_ppm": self.fit_drift_ppm,
            "fit_residual": self.fit_residual,
            "drift_faulted": self.drift_faulted,
            "step_offset_ns": self.step_offset_ns,
            "step_cover_ns": self.step_cover_ns,
            "updates": self.updates,
            "faults": self.faults,
        }

    @classmethod
    def from_payload(cls, payload: dict, config: ClockConfig) -> "StreamClockModel":
        model = cls(payload["stream"], config)
        model.last_raw = int(payload["last_raw"])
        model.raw_max = int(payload["raw_max"])
        model.freeze_run = int(payload["freeze_run"])
        model.frozen = bool(payload["frozen"])
        model.in_back_step = bool(payload["in_back_step"])
        model.last_gap = int(payload["last_gap"])
        model.pairs = int(payload["pairs"])
        baseline = payload["baseline"]
        model.baseline = None if baseline is None else int(baseline)
        cur_window = payload["cur_window"]
        model.cur_window = None if cur_window is None else int(cur_window)
        model.cur_min = int(payload["cur_min"])
        model.cur_count = int(payload["cur_count"])
        model.minima = [(int(t), float(y)) for t, y in payload["minima"]]
        model.have_fit = bool(payload["have_fit"])
        model.fit_t = int(payload["fit_t"])
        model.fit_offset = float(payload["fit_offset"])
        model.fit_drift_ppm = float(payload["fit_drift_ppm"])
        model.fit_residual = float(payload["fit_residual"])
        model.drift_faulted = bool(payload["drift_faulted"])
        model.step_offset_ns = int(payload["step_offset_ns"])
        model.step_cover_ns = int(payload["step_cover_ns"])
        model.updates = int(payload["updates"])
        model.faults = int(payload["faults"])
        return model


class ClockBank:
    """Per-stream clock models plus the fault ledger, for one builder."""

    def __init__(self, config: Optional[ClockConfig] = None) -> None:
        self.config = config or ClockConfig()
        self.models: Dict[str, StreamClockModel] = {}
        self.faults: List[ClockFault] = []
        self.repairs = 0

    def model(self, stream: str) -> StreamClockModel:
        model = self.models.get(stream)
        if model is None:
            model = StreamClockModel(stream, self.config)
            self.models[stream] = model
        return model

    @property
    def updates(self) -> int:
        return sum(model.updates for model in self.models.values())

    def observe_local(self, stream: str, raw_ns: int) -> List[ClockFault]:
        return self._wrap(stream, raw_ns, self.model(stream).observe_local(raw_ns))

    def observe_pair(
        self, stream: str, tx_ref_ns: int, rx_raw_ns: int
    ) -> List[ClockFault]:
        return self._wrap(
            stream, rx_raw_ns, self.model(stream).observe_pair(tx_ref_ns, rx_raw_ns)
        )

    def _wrap(
        self, stream: str, at_ns: int, raw_faults: List[Tuple[str, float]]
    ) -> List[ClockFault]:
        faults = [
            ClockFault(stream=stream, kind=kind, at_ns=at_ns, magnitude=magnitude)
            for kind, magnitude in raw_faults
        ]
        self.faults.extend(faults)
        return faults

    def offset_at(self, stream: str, raw_ns: int) -> int:
        model = self.models.get(stream)
        return 0 if model is None else model.offset_at(raw_ns)

    def uncertainty(self, stream: str) -> int:
        model = self.models.get(stream)
        return 0 if model is None else model.uncertainty_ns

    def effective_watermark(self, stream: str, watermark_ns: int) -> int:
        """The stream's watermark in repaired time, widened by uncertainty.

        This is how the sealing barrier "widens ``seal_margin_ns`` by the
        stream's clock uncertainty": the horizon is the min over these,
        so every stream's margin grows by exactly its own bound.
        """
        model = self.models.get(stream)
        if model is None:
            return watermark_ns
        return (
            watermark_ns - model.offset_at(watermark_ns) - model.uncertainty_ns
        )

    def max_uncertainty_ns(self) -> int:
        if not self.models:
            return 0
        return max(model.uncertainty_ns for model in self.models.values())

    def stats(self) -> Dict[str, int]:
        """Pure-int counters merged into the builder's ``ingest_stats``."""
        return {
            "clock_faults": len(self.faults),
            "clock_repairs": self.repairs,
            "clock_updates": self.updates,
            "clock_uncertainty_ns": self.max_uncertainty_ns(),
        }

    def stream_stats(self) -> Dict[str, dict]:
        """Per-stream rows for the ``clock`` health report."""
        rows: Dict[str, dict] = {}
        by_stream: Dict[str, List[ClockFault]] = {}
        for fault in self.faults:
            by_stream.setdefault(fault.stream, []).append(fault)
        for stream in sorted(self.models):
            model = self.models[stream]
            faults = by_stream.get(stream, [])
            rows[stream] = {
                "offset_ns": model.offset_at(model.last_raw) if model.have_fit else 0,
                "drift_ppm": model.fit_drift_ppm if model.have_fit else 0.0,
                "uncertainty_ns": model.uncertainty_ns,
                "faults": len(faults),
                "fault_kinds": ",".join(
                    sorted({fault.kind for fault in faults})
                ),
                "frozen": model.frozen,
            }
        return rows

    # -- snapshot ---------------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "config": self.config.to_payload(),
            "models": {
                stream: model.to_payload()
                for stream, model in sorted(self.models.items())
            },
            "faults": [fault.to_payload() for fault in self.faults],
            "repairs": self.repairs,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClockBank":
        bank = cls(ClockConfig.from_payload(payload["config"]))
        for stream, model_payload in payload["models"].items():
            bank.models[stream] = StreamClockModel.from_payload(
                model_payload, bank.config
            )
        bank.faults = [ClockFault.from_payload(f) for f in payload["faults"]]
        bank.repairs = int(payload["repairs"])
        return bank
