"""Experiment harness: topologies, injections, accuracy metrics, figures."""

from repro.experiments.accuracy import (
    RankResult,
    UNRANKED,
    associate_victims,
    baseline_ranks,
    correct_rate,
    microscope_ranks,
    rank_at_most,
    rank_curve,
    topology_plausibility,
)
from repro.experiments.harness import (
    ExperimentRun,
    MODERATE_CAIDA,
    run_injected_experiment,
    run_wild_experiment,
)
from repro.experiments.injection import InjectedProblem, InjectionPlan, standard_plan
from repro.experiments.scenarios import (
    FIG10_COSTS_NS,
    Fig10Chain,
    build_fig10_chain,
    build_single_nf,
)

__all__ = [
    "ExperimentRun",
    "FIG10_COSTS_NS",
    "Fig10Chain",
    "InjectedProblem",
    "InjectionPlan",
    "MODERATE_CAIDA",
    "RankResult",
    "UNRANKED",
    "associate_victims",
    "baseline_ranks",
    "build_fig10_chain",
    "build_single_nf",
    "correct_rate",
    "microscope_ranks",
    "rank_at_most",
    "rank_curve",
    "run_injected_experiment",
    "run_wild_experiment",
    "standard_plan",
    "topology_plausibility",
]
