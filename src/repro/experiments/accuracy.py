"""Rank-based accuracy metrics (Figures 11-13).

Both tools emit ranked culprit lists per victim; the metric is the rank of
the injected (true) culprit.  Microscope ranks fine-grained entities
(flows for traffic culprits, NF instances for local culprits); NetMedic
ranks components (NFs and sources) — each tool is scored against the most
precise answer it can express, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.diagnosis import MicroscopeEngine, VictimDiagnosis
from repro.core.records import DiagTrace
from repro.core.report import Entity, rank_of_entity, ranked_entities
from repro.core.victims import Victim
from repro.experiments.injection import InjectedProblem, InjectionPlan

#: Rank assigned when the true culprit does not appear in the output list.
UNRANKED = 99


@dataclass(frozen=True)
class RankResult:
    """Rank of the true culprit for one victim under one tool."""

    victim: Victim
    problem: InjectedProblem
    rank: int  # 1 is best; UNRANKED when absent

    @property
    def correct(self) -> bool:
        return self.rank == 1


def microscope_entity_matcher(problem: InjectedProblem) -> Callable[[Entity], bool]:
    """Predicate over Microscope's ranked entities for a ground truth."""
    if problem.kind == "burst":
        flows = set(problem.flows)
        return lambda entity: entity[0] == "flow" and entity[1] in flows
    if problem.kind in ("interrupt", "bug"):
        return lambda entity: entity[0] == "nf" and entity[1] == problem.nf
    raise ValueError(f"unknown problem kind {problem.kind!r}")


def netmedic_component_for(problem: InjectedProblem, source_name: str) -> str:
    """The component NetMedic should name for a ground truth."""
    if problem.kind == "burst":
        return source_name
    assert problem.nf is not None
    return problem.nf


def associate_victims(
    victims: Sequence[Victim],
    plan: InjectionPlan,
    max_per_problem: int = 0,
    plausible: Optional[Callable[[Victim, InjectedProblem], bool]] = None,
) -> List[Tuple[Victim, InjectedProblem]]:
    """Pair victims with the injected problem covering their arrival time.

    Victims outside every attribution window are natural background noise
    and excluded, as the paper's methodology keeps injected problems
    dominant and separated.  ``plausible`` additionally filters pairs by
    topology (a victim can only be caused by a problem at or upstream of
    its NF); use :func:`topology_plausibility`.  ``max_per_problem`` caps
    pairs per problem (0 = unlimited) to bound evaluation cost.
    """
    pairs: List[Tuple[Victim, InjectedProblem]] = []
    counts: dict = {}
    for victim in sorted(victims, key=lambda v: v.arrival_ns):
        problem = plan.problem_for_victim(victim.arrival_ns)
        if problem is None:
            continue
        if plausible is not None and not plausible(victim, problem):
            continue
        if max_per_problem and counts.get(id(problem), 0) >= max_per_problem:
            continue
        counts[id(problem)] = counts.get(id(problem), 0) + 1
        pairs.append((victim, problem))
    return pairs


def significant_victims(
    trace: DiagTrace,
    victims: Sequence[Victim],
    factor: float = 5.0,
    min_metric_ns: int = 200_000,
) -> List[Victim]:
    """Drop tail-noise latency victims.

    A latency victim only counts when its local latency is at least
    ``factor`` times its NF's median AND above an absolute floor — packets
    a hair above the 99th percentile at an uncongested NF are natural
    micro-jitter or plain full-batch wait (up to 32 service times with an
    empty queue), and attributing them to whichever injection window they
    fall into (as the paper-style time association must) would just
    measure noise.  The default floor sits above any single batch time in
    the evaluation chain.  Drop victims always count.
    """
    from repro.util.stats import percentile

    medians: dict = {}
    for name, view in trace.nfs.items():
        latencies = [
            hop.latency_ns
            for packet in trace.packets.values()
            for hop in packet.hops
            if hop.nf == name
        ]
        if latencies:
            medians[name] = percentile(latencies, 50.0)
    kept: List[Victim] = []
    for victim in victims:
        if victim.kind != "latency":
            kept.append(victim)
            continue
        median = medians.get(victim.nf)
        threshold = max(min_metric_ns, factor * median) if median else min_metric_ns
        if victim.metric >= threshold:
            kept.append(victim)
    return kept


def topology_plausibility(trace: DiagTrace) -> Callable[[Victim, InjectedProblem], bool]:
    """A victim is plausibly caused by a problem at/upstream of its NF.

    For interrupts and bugs the problem NF must be the victim NF or one of
    its (transitive) upstreams; for bursts any victim position qualifies,
    since bursts enter at the traffic source, which is upstream of all NFs.
    """
    upstream_closure: dict = {}

    def closure(nf: str) -> set:
        cached = upstream_closure.get(nf)
        if cached is not None:
            return cached
        seen: set = set()
        frontier = [nf]
        while frontier:
            current = frontier.pop()
            for up in trace.upstreams.get(current, ()):  # sources have no entry
                if up not in seen:
                    seen.add(up)
                    frontier.append(up)
        upstream_closure[nf] = seen
        return seen

    def check(victim: Victim, problem: InjectedProblem) -> bool:
        if problem.kind == "burst":
            return True
        assert problem.nf is not None
        return problem.nf == victim.nf or problem.nf in closure(victim.nf)

    return check


def microscope_ranks(
    engine: MicroscopeEngine,
    trace: DiagTrace,
    pairs: Sequence[Tuple[Victim, InjectedProblem]],
) -> List[RankResult]:
    """Rank of the injected culprit in Microscope's output, per victim."""
    results: List[RankResult] = []
    for victim, problem in pairs:
        diagnosis = engine.diagnose(victim)
        ranking = ranked_entities(diagnosis, trace)
        rank = rank_of_entity(ranking, microscope_entity_matcher(problem))
        results.append(
            RankResult(victim=victim, problem=problem, rank=rank or UNRANKED)
        )
    return results


def baseline_ranks(
    diagnoser,
    pairs: Sequence[Tuple[Victim, InjectedProblem]],
    source_name: str,
) -> List[RankResult]:
    """Ranks for NetMedic-style diagnosers exposing ``rank_of``."""
    results: List[RankResult] = []
    for victim, problem in pairs:
        component = netmedic_component_for(problem, source_name)
        rank = diagnoser.rank_of(victim, component)
        results.append(
            RankResult(victim=victim, problem=problem, rank=rank or UNRANKED)
        )
    return results


def rank_curve(results: Sequence[RankResult]) -> List[Tuple[float, int]]:
    """Figure 11/12 curve: (cumulative % of victims, rank).

    Ranks are sorted ascending; the point (x, y) reads "for x% of victims
    the true cause ranked no worse than y".
    """
    if not results:
        return []
    ranks = sorted(r.rank for r in results)
    n = len(ranks)
    return [((i + 1) * 100.0 / n, rank) for i, rank in enumerate(ranks)]


def correct_rate(results: Sequence[RankResult]) -> float:
    """Fraction of victims whose true culprit ranked first."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.correct) / len(results)


def rank_at_most(results: Sequence[RankResult], k: int) -> float:
    """Fraction of victims whose true culprit ranked within the top k."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.rank <= k) / len(results)
