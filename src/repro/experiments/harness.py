"""End-to-end experiment harness over the Figure 10 chain.

``run_injected_experiment`` reproduces the accuracy methodology of
section 6.2 (moderate-rate CAIDA-like traffic plus separated injections);
``run_wild_experiment`` reproduces section 6.5 (high load, no injections,
natural noise from service jitter and background interrupts).

Workloads are scaled down from the paper's 5-60 s testbed runs to a few
hundred milliseconds — the pure-Python simulator trades duration for
identical queueing dynamics (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.collector.runtime import RuntimeCollector
from repro.core.records import DiagTrace
from repro.experiments.injection import InjectionPlan, standard_plan
from repro.experiments.scenarios import Fig10Chain, build_fig10_chain
from repro.nfv.faults import RandomInterrupts
from repro.nfv.simulator import SimResult, Simulator
from repro.nfv.sources import TrafficSource
from repro.traffic.bursts import inject_bursts
from repro.traffic.workloads import Workload, steady_caida
from repro.util.rng import substream
from repro.util.timebase import MSEC, USEC


#: Background-traffic shape for accuracy experiments: the paper keeps the
#: CAIDA replay "moderate" so injected problems dominate natural ones.
#: Smaller elephants spread over longer spans give exactly that regime.
MODERATE_CAIDA = dict(mean_flow_packets=18.0, max_flow_packets=512, burstiness=0.5)


@dataclass
class ExperimentRun:
    """Everything an analysis needs from one simulated experiment."""

    chain: Fig10Chain
    result: SimResult
    trace: DiagTrace
    plan: InjectionPlan
    workload: Workload
    collector: Optional[RuntimeCollector] = None
    noise: Optional[RandomInterrupts] = None

    @property
    def source_name(self) -> str:
        return self.chain.source


def run_injected_experiment(
    rate_pps: float = 1_200_000.0,
    duration_ns: int = 320 * MSEC,
    seed: int = 0,
    plan: Optional[InjectionPlan] = None,
    plan_kwargs: Optional[Dict] = None,
    with_collector: bool = False,
    chain_kwargs: Optional[Dict] = None,
    caida_kwargs: Optional[Dict] = None,
) -> ExperimentRun:
    """Figure 11/12 methodology: CAIDA-like load plus injected culprits."""
    chain = build_fig10_chain(seed=seed, **(chain_kwargs or {}))
    if plan is None:
        kwargs = dict(
            duration_ns=duration_ns,
            nf_names=chain.all_nfs(),
            firewall_names=chain.firewalls,
            seed=seed,
            firewall_of=chain.firewall_of,
            horizon_ns=15 * MSEC,
        )
        kwargs.update(plan_kwargs or {})
        plan = standard_plan(**kwargs)
    shape = dict(MODERATE_CAIDA)
    shape.update(caida_kwargs or {})
    workload = steady_caida(
        rate_pps=rate_pps, duration_ns=duration_ns, seed=seed, **shape
    )
    trace = inject_bursts(
        workload.trace, plan.all_burst_specs(), workload.pids, workload.ipids
    )
    workload = Workload(
        trace=trace, pids=workload.pids, ipids=workload.ipids, seed=seed
    )
    return _run(chain, workload, plan, with_collector=with_collector)


def run_wild_experiment(
    rate_pps: float = 1_300_000.0,
    duration_ns: int = 250 * MSEC,
    seed: int = 0,
    noise_rate_per_s: float = 200.0,
    noise_duration_us: tuple = (300, 1_500),
    with_collector: bool = False,
    chain_kwargs: Optional[Dict] = None,
    caida_kwargs: Optional[Dict] = None,
) -> ExperimentRun:
    """Section 6.5 methodology: high load, natural noise, no injections.

    Defaults are calibrated so the wild run's culprit mix matches the
    paper's Table 2 regime: local culprits dominate, with a sizeable
    minority (~20-30%) of problems propagating across NFs.  Noise comes
    from frequent short CPU interrupts plus service-time jitter; traffic
    burstiness sits below the injected-experiment level because the high
    offered load already stresses every tier.
    """
    chain = build_fig10_chain(seed=seed, **(chain_kwargs or {"jitter": 0.08}))
    shape = dict(MODERATE_CAIDA, burstiness=0.4, max_flow_packets=256)
    shape.update(caida_kwargs or {})
    workload = steady_caida(
        rate_pps=rate_pps, duration_ns=duration_ns, seed=seed, **shape
    )
    noise = RandomInterrupts(
        nf_names=chain.all_nfs(),
        rate_per_s=noise_rate_per_s,
        duration_range_ns=(noise_duration_us[0] * USEC, noise_duration_us[1] * USEC),
        rng=substream(seed, "wild-noise"),
        end_ns=duration_ns,
    )
    return _run(chain, workload, InjectionPlan(), with_collector=with_collector, noise=noise)


def _run(
    chain: Fig10Chain,
    workload: Workload,
    plan: InjectionPlan,
    with_collector: bool = False,
    noise: Optional[RandomInterrupts] = None,
) -> ExperimentRun:
    source = TrafficSource(
        chain.source, workload.trace.schedule, chain.balancer()
    )
    injectors: List[object] = list(plan.injectors())
    if noise is not None:
        injectors.append(noise)
    collector = RuntimeCollector() if with_collector else None
    extra_hooks = [collector] if collector else []
    result = Simulator(
        chain.topology, [source], injectors=injectors, extra_hooks=extra_hooks
    ).run()
    trace = DiagTrace.from_sim_result(result)
    return ExperimentRun(
        chain=chain,
        result=result,
        trace=trace,
        plan=plan,
        workload=workload,
        collector=collector,
        noise=noise,
    )
