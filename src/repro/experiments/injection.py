"""Ground-truth fault injection for accuracy experiments (section 6.2).

Three culprit classes, mirroring the paper:

* **traffic bursts** — 5 random five-tuple flows, 500-2500 packets each,
* **interrupts** — random NF instance, 500-1000 us,
* **NF bugs** — a random firewall processes matching flows at 0.05 Mpps;
  trigger flows of 50-150 packets are injected.

Injections are laid out in disjoint time slots ("separate enough in time
so we unambiguously know the ground truth"); each carries an attribution
window inside which victims are considered caused by it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nfv.faults import BugSpec, InterruptInjector, InterruptSpec
from repro.nfv.packet import FiveTuple
from repro.traffic.bursts import BurstSpec
from repro.util.rng import substream
from repro.util.timebase import MSEC, USEC


@dataclass(frozen=True)
class InjectedProblem:
    """Ground truth for one injected culprit."""

    kind: str  # 'burst' | 'interrupt' | 'bug'
    at_ns: int
    #: Victims arriving in [at_ns, at_ns + horizon_ns] may be blamed on it.
    horizon_ns: int
    nf: Optional[str] = None  # interrupt / bug target
    flows: Tuple[FiveTuple, ...] = ()

    @property
    def window(self) -> Tuple[int, int]:
        return (self.at_ns, self.at_ns + self.horizon_ns)

    def covers(self, t_ns: int) -> bool:
        return self.at_ns <= t_ns <= self.at_ns + self.horizon_ns


@dataclass
class InjectionPlan:
    """Everything needed to run and score an injected experiment."""

    bursts: List[BurstSpec] = field(default_factory=list)
    interrupts: List[InterruptSpec] = field(default_factory=list)
    bugs: List[BugSpec] = field(default_factory=list)
    bug_trigger_bursts: List[BurstSpec] = field(default_factory=list)
    problems: List[InjectedProblem] = field(default_factory=list)

    def injectors(self) -> List[object]:
        injectors: List[object] = []
        if self.interrupts:
            injectors.append(InterruptInjector(self.interrupts))
        injectors.extend(self.bugs)
        return injectors

    def all_burst_specs(self) -> List[BurstSpec]:
        return self.bursts + self.bug_trigger_bursts

    def problem_for_victim(self, arrival_ns: int) -> Optional[InjectedProblem]:
        """The injected problem whose window covers the victim (if unique)."""
        covering = [p for p in self.problems if p.covers(arrival_ns)]
        if len(covering) == 1:
            return covering[0]
        if not covering:
            return None
        # Overlapping windows: prefer the most recent injection.
        return max(covering, key=lambda p: p.at_ns)


def _burst_flow(i: int, rng: np.random.Generator) -> FiveTuple:
    return FiveTuple(
        src_ip=(100 << 24) | (i + 1),
        dst_ip=(32 << 24) | (i + 1),
        src_port=int(rng.integers(20_000, 30_000)),
        dst_port=int(rng.integers(5_000, 7_000)),
        proto=6,
    )


def standard_plan(
    duration_ns: int,
    nf_names: Sequence[str],
    firewall_names: Sequence[str],
    seed: int = 0,
    n_bursts: int = 5,
    n_interrupts: int = 5,
    n_bug_triggers: int = 5,
    burst_packets: Tuple[int, int] = (500, 2_500),
    interrupt_us: Tuple[int, int] = (500, 1_000),
    bug_flow_packets: Tuple[int, int] = (50, 150),
    bug_rate_pps: float = 50_000.0,
    horizon_ns: int = 25 * MSEC,
    warmup_ns: int = 20 * MSEC,
    firewall_of: Optional[Callable[[FiveTuple], str]] = None,
) -> InjectionPlan:
    """The paper's standard injection mix, laid out in disjoint slots.

    ``firewall_of`` maps a five-tuple to the firewall instance the load
    balancers would route it to; when given, bug-trigger flows are
    resampled until they actually traverse the buggy firewall.
    """
    rng = substream(seed, "injection-plan")
    n_events = n_bursts + n_interrupts + n_bug_triggers
    if n_events == 0:
        return InjectionPlan()
    usable = duration_ns - warmup_ns
    slot = usable // n_events
    if slot < horizon_ns:
        raise ConfigurationError(
            f"duration {duration_ns} too short for {n_events} injections "
            f"with horizon {horizon_ns}"
        )
    kinds = ["burst"] * n_bursts + ["interrupt"] * n_interrupts + ["bug"] * n_bug_triggers
    rng.shuffle(kinds)

    plan = InjectionPlan()
    bug_fw = str(rng.choice(list(firewall_names)))
    bug_flows: List[FiveTuple] = []
    bug_index = 0
    burst_index = 0

    for event_idx, kind in enumerate(kinds):
        at = warmup_ns + event_idx * slot + int(rng.integers(0, slot // 8 + 1))
        if kind == "burst":
            flow = _burst_flow(burst_index, rng)
            burst_index += 1
            size = int(rng.integers(burst_packets[0], burst_packets[1] + 1))
            plan.bursts.append(BurstSpec(flow=flow, at_ns=at, n_packets=size))
            plan.problems.append(
                InjectedProblem(
                    kind="burst", at_ns=at, horizon_ns=horizon_ns, flows=(flow,)
                )
            )
        elif kind == "interrupt":
            nf = str(rng.choice(list(nf_names)))
            duration = int(rng.integers(interrupt_us[0], interrupt_us[1] + 1)) * USEC
            plan.interrupts.append(
                InterruptSpec(nf=nf, at_ns=at, duration_ns=duration)
            )
            plan.problems.append(
                InjectedProblem(kind="interrupt", at_ns=at, horizon_ns=horizon_ns, nf=nf)
            )
        else:
            flow = None
            for attempt in range(256):
                candidate = FiveTuple(
                    src_ip=(100 << 24) | 0x10000 | (bug_index + attempt * 256),
                    dst_ip=(32 << 24) | 0x10000 | bug_index,
                    src_port=2_000 + bug_index,
                    dst_port=6_000 + bug_index,
                    proto=6,
                )
                if firewall_of is None or firewall_of(candidate) == bug_fw:
                    flow = candidate
                    break
            if flow is None:
                raise ConfigurationError(
                    f"could not find a flow routed to {bug_fw} in 256 attempts"
                )
            bug_index += 1
            bug_flows.append(flow)
            size = int(rng.integers(bug_flow_packets[0], bug_flow_packets[1] + 1))
            # Trigger flow paced at a moderate rate (not itself a burst).
            plan.bug_trigger_bursts.append(
                BurstSpec(flow=flow, at_ns=at, n_packets=size, gap_ns=5 * USEC)
            )
            plan.problems.append(
                InjectedProblem(
                    kind="bug",
                    at_ns=at,
                    horizon_ns=horizon_ns,
                    nf=bug_fw,
                    flows=(flow,),
                )
            )
    if bug_flows:
        frozen = frozenset(bug_flows)
        slow_ns = int(1e9 / bug_rate_pps)
        plan.bugs.append(
            BugSpec(
                nf=bug_fw,
                predicate=lambda f, _s=frozen: f in _s,
                slow_ns=slow_ns,
                description=f"slow path for {len(frozen)} trigger flows",
            )
        )
    return plan
