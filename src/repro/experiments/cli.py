"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli fig01 fig02
    python -m repro.experiments.cli fig11 --seed 3
    python -m repro.experiments.cli all

Each target runs the corresponding experiment at bench scale and prints
the series in the paper's row format (the same code paths the benchmark
suite exercises).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.util.timebase import MSEC


def _fig01(seed: int) -> None:
    from repro.experiments.figures import fig01_data

    data = fig01_data(seed=seed)
    start, end = data["burst_window_ns"]
    print(f"[fig01] burst window {start/1e3:.0f}-{end/1e3:.0f} us")
    queue = data["queue_series"]
    for t, q in queue[:: max(1, len(queue) // 20)]:
        print(f"  t={t/1e6:5.2f}ms queue={q}")


def _fig02(seed: int) -> None:
    from repro.experiments.figures import fig02_data

    data = fig02_data(seed=seed)
    print("[fig02] flow A throughput at the VPN (Mpps):")
    for t, r in data["flow_a_rate"]:
        print(f"  t={t/1e6:4.1f}ms rate={r/1e6:.2f}")


def _fig03(seed: int) -> None:
    from repro.experiments.figures import fig03_data

    data = fig03_data(seed=seed)
    print(f"[fig03] drops by origin: {data['drops']}")


def _accuracy(seed: int):
    from repro.experiments.figures import accuracy_data

    print("[accuracy] running the section 6.2 methodology (this takes a while)...")
    return accuracy_data(seed=seed, duration_ns=200 * MSEC)


def _fig11(seed: int) -> None:
    from repro.experiments.figures import fig11_data

    data = fig11_data(_accuracy(seed))
    print(f"[fig11] microscope rank-1 rate: {data['microscope_correct']:.3f}")
    print(f"[fig11] netmedic   rank-1 rate: {data['netmedic_correct']:.3f}")


def _fig12(seed: int) -> None:
    from repro.experiments.figures import fig12_data

    per_kind = fig12_data(_accuracy(seed))
    for kind, stats in per_kind.items():
        print(
            f"[fig12] {kind:<10} microscope={stats['microscope_correct']:.3f} "
            f"netmedic={stats['netmedic_correct']:.3f} (n={stats['n_victims']})"
        )


def _fig13(seed: int) -> None:
    from repro.experiments.figures import fig13_data

    rates = fig13_data(_accuracy(seed))
    for ms, rate in rates.items():
        print(f"[fig13] window {ms:>4d} ms -> correct rate {rate:.3f}")


def _fig14(seed: int) -> None:
    from repro.experiments.figures import fig14_data

    data = fig14_data(seed=seed)
    print(
        f"[fig14] {data['n_relations']} relations -> {data['n_patterns']} patterns "
        f"in {data['runtime_s']:.2f}s (bug at {data['bug_fw']})"
    )
    for pattern in data["bug_patterns"][:5]:
        print(f"  {pattern} score={pattern.score:.1f}")


def _wild(seed: int) -> None:
    from repro.experiments.figures import wild_data

    data = wild_data(seed=seed)
    print(f"[wild] victims={data['n_victims']} relations={data['n_relations']}")
    print(f"[table2] cross-NF propagation share: {data['cross_nf_share']:.1%}")
    print(f"[fig15] median gap: "
          f"{next(g for g, c in data['gap_cdf_ms'] if c >= 0.5):.2f} ms")


def _overhead(seed: int) -> None:
    from repro.collector.overhead import measure_overhead_by_type
    from repro.nfv.nfs import Firewall, Monitor, Nat, Vpn

    reports = measure_overhead_by_type(
        {
            "nat": lambda: Nat("n", router=lambda p: None),
            "firewall": lambda: Firewall(
                "f", route_match=lambda p: None, route_default=lambda p: None
            ),
            "monitor": lambda: Monitor("m", router=lambda p: None),
            "vpn": lambda: Vpn("v", router=lambda p: None),
        }
    )
    for name, report in reports.items():
        print(f"[overhead] {name:<8} degradation {report.degradation:.2%}")


TARGETS: Dict[str, Callable[[int], None]] = {
    "fig01": _fig01,
    "fig02": _fig02,
    "fig03": _fig03,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "wild": _wild,  # fig15 + tables 2-3
    "overhead": _overhead,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate Microscope paper figures/tables.",
    )
    parser.add_argument("targets", nargs="*", help="figure ids, or 'all'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list targets")
    args = parser.parse_args(argv)

    if args.list or not args.targets:
        print("available targets:", ", ".join(TARGETS), "| all")
        return 0
    targets = list(TARGETS) if args.targets == ["all"] else args.targets
    for target in targets:
        runner = TARGETS.get(target)
        if runner is None:
            print(f"unknown target {target!r}; use --list", file=sys.stderr)
            return 2
        runner(args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
