"""Evaluation topologies (Figure 10 and the motivation scenarios).

The paper's chain: incoming traffic is flow-hash balanced over 4 NATs;
each NAT feeds one of 5 Firewalls (flow-hashed); flows matching a firewall
rule go to one of 3 Monitors, everything else straight to one of 4 VPNs;
Monitors also forward to the VPNs.  16 NF instances total.

Service costs here are tuned so the standard 1.2 Mpps workload puts every
tier at moderate utilisation (0.6-0.7): idle enough to drain queues
between episodes, busy enough that bursts/interrupts/bugs leave long
queues — the regime the paper's testbed operates in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nfv.nf import NetworkFunction
from repro.nfv.nfs import Firewall, FirewallRule, Monitor, Nat, Vpn
from repro.nfv.packet import Packet
from repro.nfv.topology import Topology
from repro.util.rng import substream

#: Costs (ns/packet) for the Figure 10 evaluation, giving the utilisations
#: in the module docstring at 1.2 Mpps aggregate.
FIG10_COSTS_NS: Dict[str, int] = {
    "nat": 2_000,  # peak 0.500 Mpps, ~0.30 Mpps offered per instance
    "firewall": 2_800,  # peak 0.357 Mpps, ~0.24 Mpps offered
    "monitor": 4_000,  # peak 0.250 Mpps, ~0.16 Mpps offered
    "vpn": 2_200,  # peak 0.455 Mpps, ~0.30 Mpps offered
}

#: Firewall rule: web-ish destination ports are diverted to the Monitors.
MONITORED_PORTS = (80, 8080)


@dataclass
class Fig10Chain:
    """The built topology plus name groups for experiments."""

    topology: Topology
    source: str
    nats: List[str]
    firewalls: List[str]
    monitors: List[str]
    vpns: List[str]

    def all_nfs(self) -> List[str]:
        return self.nats + self.firewalls + self.monitors + self.vpns

    def balancer(self):
        """Flow-hash balancer over the NAT tier for the traffic source."""
        nats = self.nats

        def balance(packet: Packet) -> str:
            return nats[hash(packet.flow) % len(nats)]

        return balance

    def nat_of(self, flow) -> str:
        """NAT instance the load balancer sends ``flow`` to."""
        return self.nats[hash(flow) % len(self.nats)]

    def firewall_of(self, flow) -> str:
        """Firewall instance ``flow`` traverses (mirrors the NAT routers)."""
        nat_idx = hash(flow) % len(self.nats)
        return self.firewalls[
            (hash(flow) ^ (0xCAFE + nat_idx)) % len(self.firewalls)
        ]


def _hash_pick(targets: Sequence[str], salt: int):
    frozen = list(targets)

    def pick(packet: Packet) -> str:
        return frozen[(hash(packet.flow) ^ salt) % len(frozen)]

    return pick


def build_fig10_chain(
    seed: int = 0,
    costs_ns: Optional[Dict[str, int]] = None,
    jitter: float = 0.03,
    n_nats: int = 4,
    n_firewalls: int = 5,
    n_monitors: int = 3,
    n_vpns: int = 4,
    queue_capacity: int = 1024,
) -> Fig10Chain:
    """Construct the 16-NF evaluation chain (Figure 10)."""
    costs = dict(FIG10_COSTS_NS)
    if costs_ns:
        costs.update(costs_ns)
    topo = Topology()
    nats = [f"nat{i + 1}" for i in range(n_nats)]
    firewalls = [f"fw{i + 1}" for i in range(n_firewalls)]
    monitors = [f"mon{i + 1}" for i in range(n_monitors)]
    vpns = [f"vpn{i + 1}" for i in range(n_vpns)]

    for name in vpns:
        topo.add_nf(
            Vpn(
                name,
                router=lambda p: None,
                cost_ns=costs["vpn"],
                jitter=jitter,
                rng=substream(seed, f"svc-{name}"),
                queue_capacity=queue_capacity,
            )
        )
    for name in monitors:
        topo.add_nf(
            Monitor(
                name,
                router=_hash_pick(vpns, salt=0x5F5F),
                cost_ns=costs["monitor"],
                jitter=jitter,
                rng=substream(seed, f"svc-{name}"),
                queue_capacity=queue_capacity,
            )
        )
    rules = [
        FirewallRule(dst_port=(port, port), action="monitor")
        for port in MONITORED_PORTS
    ]
    for name in firewalls:
        topo.add_nf(
            Firewall(
                name,
                route_match=_hash_pick(monitors, salt=0xA11),
                route_default=_hash_pick(vpns, salt=0xBEE),
                rules=rules,
                cost_ns=costs["firewall"],
                jitter=jitter,
                rng=substream(seed, f"svc-{name}"),
                queue_capacity=queue_capacity,
            )
        )
    for i, name in enumerate(nats):
        topo.add_nf(
            Nat(
                name,
                router=_hash_pick(firewalls, salt=0xCAFE + i),
                cost_ns=costs["nat"],
                jitter=jitter,
                rng=substream(seed, f"svc-{name}"),
                queue_capacity=queue_capacity,
            )
        )

    source = "traffic-src"
    topo.add_source(source)
    for nat in nats:
        topo.connect(source, nat)
    for nat in nats:
        for fw in firewalls:
            topo.connect(nat, fw)
    for fw in firewalls:
        for mon in monitors:
            topo.connect(fw, mon)
        for vpn in vpns:
            topo.connect(fw, vpn)
    for mon in monitors:
        for vpn in vpns:
            topo.connect(mon, vpn)

    return Fig10Chain(
        topology=topo,
        source=source,
        nats=nats,
        firewalls=firewalls,
        monitors=monitors,
        vpns=vpns,
    )


def build_single_nf(
    nf_type: str = "firewall",
    cost_ns: Optional[int] = None,
    seed: int = 0,
    jitter: float = 0.0,
    queue_capacity: int = 1024,
) -> Topology:
    """Source -> one NF -> exit (the Figure 1 scenario)."""
    topo = Topology()
    rng = substream(seed, "single-nf") if jitter else None
    if nf_type == "firewall":
        nf: NetworkFunction = Firewall(
            "fw1",
            route_match=lambda p: None,
            route_default=lambda p: None,
            rules=[],
            cost_ns=cost_ns,
            jitter=jitter,
            rng=rng,
            queue_capacity=queue_capacity,
        )
    elif nf_type == "nat":
        nf = Nat("nat1", router=lambda p: None, cost_ns=cost_ns, jitter=jitter, rng=rng,
                 queue_capacity=queue_capacity)
    elif nf_type == "monitor":
        nf = Monitor("mon1", router=lambda p: None, cost_ns=cost_ns, jitter=jitter,
                     rng=rng, queue_capacity=queue_capacity)
    else:
        nf = Vpn("vpn1", router=lambda p: None, cost_ns=cost_ns, jitter=jitter, rng=rng,
                 queue_capacity=queue_capacity)
    topo.add_nf(nf)
    topo.add_source("src")
    topo.connect("src", nf.name)
    return topo
