"""Series builders for every figure and table in the paper's evaluation.

Each ``figNN_data`` / ``tableN_data`` function runs the corresponding
experiment at a laptop-friendly scale and returns plain dicts of series —
the benchmark files print them in the paper's row/series format and assert
the qualitative shape.  See DESIGN.md's per-experiment index.
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.netmedic import NetMedic, NetMedicConfig
from repro.core.diagnosis import MicroscopeEngine
from repro.core.records import DiagTrace, NFView
from repro.core.report import causal_relations, ranked_entities
from repro.core.victims import Victim, VictimSelector
from repro.experiments.accuracy import (
    RankResult,
    associate_victims,
    baseline_ranks,
    correct_rate,
    microscope_ranks,
    rank_curve,
    significant_victims,
    topology_plausibility,
)
from repro.experiments.harness import (
    ExperimentRun,
    run_injected_experiment,
    run_wild_experiment,
)
from repro.experiments.injection import InjectionPlan, standard_plan
from repro.experiments.scenarios import build_single_nf
from repro.nfv.faults import InterruptInjector, InterruptSpec
from repro.nfv.packet import FiveTuple, Packet
from repro.nfv.simulator import Simulator
from repro.nfv.sources import TrafficSource, constant_target
from repro.nfv.topology import Topology
from repro.nfv.nfs import Nat, Monitor, Vpn
from repro.traffic.allocators import IpidSpace, PidAllocator
from repro.traffic.bursts import BurstSpec, inject_bursts
from repro.traffic.caida import CaidaLikeTraffic
from repro.traffic.replay import constant_rate_flow, merge_schedules
from repro.util.rng import substream
from repro.util.stats import cdf_points, rate_series
from repro.util.timebase import MSEC, USEC


def queue_series(view: NFView, bin_ns: int = 50 * USEC) -> List[Tuple[int, int]]:
    """(time, queue length) sampled at bin edges from arrival/read streams."""
    if not view.arrivals:
        return []
    arrival_times = [t for t, _ in view.arrivals]
    read_times = [t for t, _ in view.reads]
    end = max(arrival_times[-1], read_times[-1] if read_times else 0)
    series: List[Tuple[int, int]] = []
    t = 0
    while t <= end:
        qlen = bisect.bisect_right(arrival_times, t) - bisect.bisect_right(
            read_times, t
        )
        series.append((t, max(0, qlen)))
        t += bin_ns
    return series


# ---------------------------------------------------------------------------
# Figure 1: a 340 us burst delays flows for ~3 ms at a single Firewall.
# ---------------------------------------------------------------------------

def fig01_data(seed: int = 0) -> Dict[str, object]:
    # Firewall at 0.357 Mpps peak, background at 0.23 Mpps (util 0.64): the
    # 340 us burst builds a queue that then takes ~3-4 ms to drain.
    topo = build_single_nf("firewall", cost_ns=2_800, seed=seed, jitter=0.02)
    fw = next(iter(topo.nfs))
    pids = PidAllocator()
    ipids = IpidSpace(substream(seed, "fig1-ipids"))
    duration = 6 * MSEC
    background = CaidaLikeTraffic(
        rate_pps=230_000,
        duration_ns=duration,
        seed=seed,
        mean_flow_packets=12,
        max_flow_packets=96,
        burstiness=0.6,
    ).generate(pids, ipids)
    burst_flow = FiveTuple.of("100.0.0.9", "32.0.0.9", 7_777, 9_999)
    # ~340 us burst: packets at 680 ns gaps.
    burst = BurstSpec(flow=burst_flow, at_ns=570 * USEC, n_packets=500, gap_ns=680)
    trace = inject_bursts(background, [burst], pids, ipids)
    source = TrafficSource("src", trace.schedule, constant_target(fw))
    result = Simulator(topo, [source]).run()
    diag = DiagTrace.from_sim_result(result)
    latency = [
        (packet.hops[0].arrival_ns, packet.hops[0].latency_ns)
        for packet in diag.packets.values()
        if packet.hops and packet.flow != burst_flow
    ]
    latency.sort()
    return {
        "burst_window_ns": (burst.at_ns, burst.at_ns + burst.duration_ns),
        "latency_series": latency,  # (arrival ns, firewall latency ns)
        "queue_series": queue_series(diag.nfs[fw]),
        "trace": diag,
    }


# ---------------------------------------------------------------------------
# Figure 2: a NAT interrupt degrades flow A's throughput at the VPN later.
# ---------------------------------------------------------------------------

def fig02_data(seed: int = 0) -> Dict[str, object]:
    topo = Topology()
    # The NAT is much faster than the VPN, so its post-interrupt drain
    # slams the VPN well above the VPN's peak rate (the paper's setting).
    topo.add_nf(Nat("nat1", router=lambda p: "vpn1", cost_ns=400))
    topo.add_nf(Vpn("vpn1", router=lambda p: None, cost_ns=640))
    topo.add_source("src-caida")
    topo.add_source("src-flowA")
    topo.connect("src-caida", "nat1")
    topo.connect("nat1", "vpn1")
    topo.connect("src-flowA", "vpn1")
    pids = PidAllocator()
    ipids = IpidSpace(substream(seed, "fig2-ipids"))
    duration = 3 * MSEC
    caida = CaidaLikeTraffic(
        rate_pps=1_000_000,
        duration_ns=duration,
        seed=seed,
        mean_flow_packets=16,
        max_flow_packets=128,
        burstiness=0.8,
        flow_rate_pps=120_000,
    ).generate(pids, ipids)
    flow_a = FiveTuple.of("50.0.0.1", "60.0.0.1", 5_555, 443)
    direct = constant_rate_flow(flow_a, 300_000, duration, pids, ipids)
    interrupt = InterruptSpec(nf="nat1", at_ns=500 * USEC, duration_ns=800 * USEC)
    result = Simulator(
        topo,
        [
            TrafficSource("src-caida", caida.schedule, constant_target("nat1")),
            TrafficSource("src-flowA", direct, constant_target("vpn1")),
        ],
        injectors=[InterruptInjector([interrupt])],
    ).run()
    diag = DiagTrace.from_sim_result(result)
    # Throughput at the VPN, split by origin, from VPN departure times.
    flow_a_departs: List[int] = []
    nat_departs: List[int] = []
    for packet in diag.packets.values():
        hop = packet.hop_at("vpn1")
        if hop is None:
            continue
        if packet.flow == flow_a:
            flow_a_departs.append(hop.depart_ns)
        else:
            nat_departs.append(hop.depart_ns)
    bin_ns = 100 * USEC
    return {
        "interrupt_window_ns": (interrupt.at_ns, interrupt.at_ns + interrupt.duration_ns),
        "flow_a_rate": rate_series(flow_a_departs, bin_ns, end_ns=duration),
        "nat_rate": rate_series(nat_departs, bin_ns, end_ns=duration),
        "queue_series": queue_series(diag.nfs["vpn1"]),
        "trace": diag,
        "flow_a": flow_a,
    }


# ---------------------------------------------------------------------------
# Figure 3: equal interrupts at heavy (NAT) and light (Monitor) upstreams
# have different impact on the shared VPN.
# ---------------------------------------------------------------------------

def fig03_data(seed: int = 0) -> Dict[str, object]:
    topo = Topology()
    topo.add_nf(Nat("nat1", router=lambda p: "vpn1", cost_ns=400))
    topo.add_nf(Monitor("mon1", router=lambda p: "vpn1", cost_ns=400))
    topo.add_nf(Vpn("vpn1", router=lambda p: None, cost_ns=1_600, queue_capacity=256))
    topo.add_source("src-nat")
    topo.add_source("src-mon")
    topo.add_source("src-flowA")
    for src, dst in (("src-nat", "nat1"), ("src-mon", "mon1"), ("src-flowA", "vpn1")):
        topo.connect(src, dst)
    topo.connect("nat1", "vpn1")
    topo.connect("mon1", "vpn1")
    pids = PidAllocator()
    ipids = IpidSpace(substream(seed, "fig3-ipids"))
    duration = 5 * MSEC
    heavy_flow = FiveTuple.of("10.1.0.1", "20.1.0.1", 1_111, 80)
    light_flow = FiveTuple.of("10.2.0.1", "20.2.0.1", 2_222, 80)
    flow_a = FiveTuple.of("50.0.0.1", "60.0.0.1", 5_555, 443)
    heavy = constant_rate_flow(heavy_flow, 250_000, duration, pids, ipids)
    light = constant_rate_flow(light_flow, 50_000, duration, pids, ipids)
    direct = constant_rate_flow(flow_a, 250_000, duration, pids, ipids)
    at = 1_000 * USEC
    interrupts = [
        InterruptSpec(nf="nat1", at_ns=at, duration_ns=1_200 * USEC),
        InterruptSpec(nf="mon1", at_ns=at, duration_ns=1_200 * USEC),
    ]
    result = Simulator(
        topo,
        [
            TrafficSource("src-nat", heavy, constant_target("nat1")),
            TrafficSource("src-mon", light, constant_target("mon1")),
            TrafficSource("src-flowA", direct, constant_target("vpn1")),
        ],
        injectors=[InterruptInjector(interrupts)],
    ).run()
    diag = DiagTrace.from_sim_result(result)
    arrivals_by_origin: Dict[str, List[int]] = {"nat1": [], "mon1": [], "flowA": []}
    drops_by_origin: Dict[str, List[int]] = {"nat1": [], "mon1": [], "flowA": []}
    for packet in diag.packets.values():
        origin = (
            "flowA"
            if packet.flow == flow_a
            else ("nat1" if packet.flow == heavy_flow else "mon1")
        )
        hop = packet.hop_at("vpn1")
        if hop is not None:
            arrivals_by_origin[origin].append(hop.arrival_ns)
        if packet.dropped_at == "vpn1":
            drops_by_origin[origin].append(packet.dropped_ns)
    bin_ns = 100 * USEC
    return {
        "interrupt_at_ns": at,
        "input_rates": {
            origin: rate_series(times, bin_ns, end_ns=duration)
            for origin, times in arrivals_by_origin.items()
        },
        "drops": {origin: len(times) for origin, times in drops_by_origin.items()},
        "drop_times": drops_by_origin,
        "trace": diag,
    }


# ---------------------------------------------------------------------------
# Figures 11-13: diagnostic accuracy against NetMedic.
# ---------------------------------------------------------------------------

@dataclass
class AccuracyData:
    """Shared artefacts for the accuracy figures."""

    run: ExperimentRun
    pairs: List[Tuple[Victim, object]]
    microscope: List[RankResult]
    netmedic: List[RankResult]

    def microscope_curve(self) -> List[Tuple[float, int]]:
        return rank_curve(self.microscope)

    def netmedic_curve(self) -> List[Tuple[float, int]]:
        return rank_curve(self.netmedic)


def accuracy_data(
    seed: int = 0,
    duration_ns: int = 320 * MSEC,
    n_bursts: int = 5,
    n_interrupts: int = 5,
    n_bug_triggers: int = 5,
    max_per_problem: int = 40,
    netmedic_window_ns: int = 10 * MSEC,
    victim_pct: float = 99.5,
) -> AccuracyData:
    """Run the section 6.2 methodology once; reused by Figures 11-13."""
    run = run_injected_experiment(
        duration_ns=duration_ns,
        seed=seed,
        plan_kwargs=dict(
            n_bursts=n_bursts,
            n_interrupts=n_interrupts,
            n_bug_triggers=n_bug_triggers,
        ),
    )
    selector = VictimSelector(run.trace)
    victims = significant_victims(
        run.trace,
        selector.hop_latency_victims(pct=victim_pct) + selector.drop_victims(),
    )
    pairs = associate_victims(
        victims,
        run.plan,
        max_per_problem=max_per_problem,
        plausible=topology_plausibility(run.trace),
    )
    engine = MicroscopeEngine(run.trace)
    microscope = microscope_ranks(engine, run.trace, pairs)
    netmedic = NetMedic(run.trace, NetMedicConfig(window_ns=netmedic_window_ns))
    netmedic_results = baseline_ranks(netmedic, pairs, run.source_name)
    return AccuracyData(
        run=run, pairs=pairs, microscope=microscope, netmedic=netmedic_results
    )


def fig11_data(data: AccuracyData) -> Dict[str, object]:
    return {
        "microscope_curve": data.microscope_curve(),
        "netmedic_curve": data.netmedic_curve(),
        "microscope_correct": correct_rate(data.microscope),
        "netmedic_correct": correct_rate(data.netmedic),
        "n_victims": len(data.pairs),
    }


def fig12_data(data: AccuracyData) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for kind in ("burst", "interrupt", "bug"):
        micro = [r for r in data.microscope if r.problem.kind == kind]
        net = [r for r in data.netmedic if r.problem.kind == kind]
        out[kind] = {
            "microscope_curve": rank_curve(micro),
            "netmedic_curve": rank_curve(net),
            "microscope_correct": correct_rate(micro),
            "netmedic_correct": correct_rate(net),
            "n_victims": len(micro),
        }
    return out


def fig13_data(
    data: AccuracyData, window_ms: Sequence[float] = (0.2, 1, 5, 10, 50)
) -> Dict[float, float]:
    """NetMedic correct rate versus time-window size.

    The paper's optimum sits at 10 ms on its testbed; our simulated
    timescales are compressed (drains last a few ms, not tens), so the
    sweep extends below 1 ms to bracket the optimum on both sides.
    """
    out: Dict[float, float] = {}
    for ms in window_ms:
        netmedic = NetMedic(
            data.run.trace, NetMedicConfig(window_ns=int(ms * MSEC))
        )
        results = baseline_ranks(netmedic, data.pairs, data.run.source_name)
        out[ms] = correct_rate(results)
    return out


# ---------------------------------------------------------------------------
# Section 6.3 sensitivity sweeps.
# ---------------------------------------------------------------------------

def sweep_burst_sizes(
    sizes: Sequence[int] = (200, 1_000, 2_500, 5_000),
    seed: int = 0,
    duration_ns: int = 120 * MSEC,
) -> Dict[int, float]:
    """Microscope correct rate versus injected burst size."""
    out: Dict[int, float] = {}
    for i, size in enumerate(sizes):
        run = run_injected_experiment(
            duration_ns=duration_ns,
            seed=seed + i,
            plan_kwargs=dict(
                n_bursts=3,
                n_interrupts=0,
                n_bug_triggers=0,
                burst_packets=(size, size),
                warmup_ns=15 * MSEC,
            ),
        )
        selector = VictimSelector(run.trace)
        victims = selector.hop_latency_victims(pct=99.5) + selector.drop_victims()
        pairs = associate_victims(
            victims, run.plan, max_per_problem=40,
            plausible=topology_plausibility(run.trace),
        )
        engine = MicroscopeEngine(run.trace)
        out[size] = correct_rate(microscope_ranks(engine, run.trace, pairs))
    return out


def sweep_interrupt_lengths(
    lengths_us: Sequence[int] = (300, 600, 1_000, 1_500),
    seed: int = 0,
    duration_ns: int = 120 * MSEC,
) -> Dict[int, float]:
    """Microscope correct rate versus injected interrupt length."""
    out: Dict[int, float] = {}
    for i, us in enumerate(lengths_us):
        run = run_injected_experiment(
            duration_ns=duration_ns,
            seed=seed + i,
            plan_kwargs=dict(
                n_bursts=0,
                n_interrupts=4,
                n_bug_triggers=0,
                interrupt_us=(us, us),
                warmup_ns=15 * MSEC,
            ),
        )
        selector = VictimSelector(run.trace)
        victims = selector.hop_latency_victims(pct=99.5) + selector.drop_victims()
        pairs = associate_victims(
            victims, run.plan, max_per_problem=40,
            plausible=topology_plausibility(run.trace),
        )
        engine = MicroscopeEngine(run.trace)
        out[us] = correct_rate(microscope_ranks(engine, run.trace, pairs))
    return out


def sweep_propagation_hops(
    data: AccuracyData, max_per_bucket: int = 25, victim_pct: float = 99.0
) -> Dict[int, float]:
    """Microscope correct rate versus culprit-to-victim hop distance.

    Hop distance is measured on the NF graph between the injected culprit
    NF and the victim NF (0 = same NF).  Burst problems are excluded: the
    source is outside the NF graph.  Victims are re-sampled per (problem,
    distance) bucket so multi-hop victims are represented even though the
    main accuracy run caps victims per problem.
    """
    trace = data.run.trace
    # Shortest downstream distance from every NF via BFS on the DAG.
    children: Dict[str, List[str]] = defaultdict(list)
    for nf, ups in trace.upstreams.items():
        for up in ups:
            children[up].append(nf)

    def distance(src: str, dst: str) -> Optional[int]:
        if src == dst:
            return 0
        frontier = [(src, 0)]
        seen = {src}
        while frontier:
            node, d = frontier.pop(0)
            for child in children.get(node, ()):  # DAG, small
                if child == dst:
                    return d + 1
                if child not in seen:
                    seen.add(child)
                    frontier.append((child, d + 1))
        return None

    selector = VictimSelector(trace)
    victims = significant_victims(
        trace,
        selector.hop_latency_victims(pct=victim_pct) + selector.drop_victims(),
    )
    pairs = associate_victims(
        victims, data.run.plan, plausible=topology_plausibility(trace)
    )
    sampled: List = []
    counts: Dict[Tuple[int, int], int] = defaultdict(int)
    hop_of: Dict[int, int] = {}
    for index, (victim, problem) in enumerate(pairs):
        if problem.kind == "burst" or problem.nf is None:
            continue
        hops = distance(problem.nf, victim.nf)
        if hops is None:
            continue
        key = (id(problem), hops)
        if counts[key] >= max_per_bucket:
            continue
        counts[key] += 1
        hop_of[len(sampled)] = hops
        sampled.append((victim, problem))

    engine = MicroscopeEngine(trace)
    results = microscope_ranks(engine, trace, sampled)
    buckets: Dict[int, List[RankResult]] = defaultdict(list)
    for index, result in enumerate(results):
        buckets[hop_of[index]].append(result)
    return {hops: correct_rate(items) for hops, items in sorted(buckets.items())}


# ---------------------------------------------------------------------------
# Section 6.4 / Figure 14: pattern aggregation effectiveness.
# ---------------------------------------------------------------------------

def fig14_data(
    seed: int = 0,
    duration_ns: int = 150 * MSEC,
    threshold_fraction: float = 0.01,
) -> Dict[str, object]:
    """Bug-triggering flows (ports 2000-2008 -> 6000-6008) surfacing as
    culprit patterns, with aggregation statistics."""
    from repro.aggregation.patterns import PatternAggregator
    from repro.experiments.scenarios import build_fig10_chain
    from repro.nfv.faults import BugSpec
    from repro.traffic.workloads import steady_caida
    from repro.experiments.harness import MODERATE_CAIDA, _run

    chain = build_fig10_chain(seed=seed)
    template = FiveTuple.of("100.0.0.1", "32.0.0.1", 2_000, 6_000)

    # The paper's nine trigger port pairs (2000-2008 -> 6000-6008).  The
    # bug lives at whichever firewall the flow-hash tiers route most of
    # these pairs to ("Firewall 2" in the paper's deployment).
    candidates = [
        FiveTuple(template.src_ip, template.dst_ip, 2_000 + i, 6_000 + i, 6)
        for i in range(9)
    ]
    placement = Counter(chain.firewall_of(flow) for flow in candidates)
    bug_fw = placement.most_common(1)[0][0]
    bug_flows = [flow for flow in candidates if chain.firewall_of(flow) == bug_fw]

    plan = InjectionPlan()
    rng = substream(seed, "fig14")
    at = 20 * MSEC
    while at < duration_ns - 10 * MSEC:
        flow = bug_flows[int(rng.integers(0, len(bug_flows)))]
        size = int(rng.integers(50, 151))
        plan.bug_trigger_bursts.append(
            BurstSpec(flow=flow, at_ns=at, n_packets=size, gap_ns=5 * USEC)
        )
        at += 12 * MSEC
    frozen = frozenset(bug_flows)
    plan.bugs.append(
        BugSpec(nf=bug_fw, predicate=lambda f, _s=frozen: f in _s, slow_ns=20_000)
    )
    workload = steady_caida(
        rate_pps=1_200_000.0, duration_ns=duration_ns, seed=seed, **MODERATE_CAIDA
    )
    from repro.traffic.workloads import Workload

    trace = inject_bursts(
        workload.trace, plan.all_burst_specs(), workload.pids, workload.ipids
    )
    workload = Workload(trace=trace, pids=workload.pids, ipids=workload.ipids, seed=seed)
    run = _run(chain, workload, plan)

    selector = VictimSelector(run.trace)
    victims = selector.hop_latency_victims(pct=99.0) + selector.drop_victims()
    engine = MicroscopeEngine(run.trace)
    diagnoses = engine.diagnose_all(victims)
    relations = causal_relations(diagnoses, run.trace)
    aggregator = PatternAggregator(
        nf_types=run.trace.nf_types, threshold_fraction=threshold_fraction
    )
    result = aggregator.aggregate(relations)
    bug_patterns = [
        p
        for p in result.patterns
        if str(p.culprit_location) == bug_fw
        and any(p.culprit.matches(flow) for flow in frozen)
    ]
    return {
        "n_relations": len(relations),
        "n_patterns": len(result.patterns),
        "runtime_s": result.runtime_s,
        "patterns": result.patterns,
        "bug_patterns": bug_patterns,
        "bug_fw": bug_fw,
        "bug_flows": sorted(frozen),
        "trace": run.trace,
    }


# ---------------------------------------------------------------------------
# Section 6.5 / Figure 15 / Tables 2-3: running in the wild.
# ---------------------------------------------------------------------------

def wild_data(
    seed: int = 0,
    duration_ns: int = 200 * MSEC,
    victim_pct: float = 99.9,
    max_victims: int = 600,
) -> Dict[str, object]:
    run = run_wild_experiment(duration_ns=duration_ns, seed=seed)
    selector = VictimSelector(run.trace)
    victims = selector.hop_latency_victims(pct=victim_pct) + selector.drop_victims()
    victims = victims[:max_victims]
    engine = MicroscopeEngine(run.trace)
    diagnoses = engine.diagnose_all(victims)
    relations = causal_relations(diagnoses, run.trace)

    nf_types = dict(run.trace.nf_types)
    type_of = lambda loc: nf_types.get(loc, "source")

    # Table 2: culprit type x victim type, weighted by relation score.
    matrix: Dict[Tuple[str, str], float] = defaultdict(float)
    total_score = 0.0
    for relation in relations:
        culprit_type = type_of(relation.culprit_location)
        victim_type = type_of(relation.victim_location)
        matrix[(culprit_type, victim_type)] += relation.score
        total_score += relation.score
    table2 = {
        key: (score / total_score if total_score else 0.0)
        for key, score in matrix.items()
    }

    # Propagation shares: culprit and victim at different NFs.
    propagation = sum(
        share
        for (culprit_type, victim_type), share in table2.items()
        if culprit_type != victim_type or culprit_type == "source"
    )
    # Distinct-location accounting for multi-hop:
    cross_nf = 0.0
    two_hop = 0.0
    order = {"source": 0, "nat": 1, "firewall": 2, "monitor": 3, "vpn": 4}
    for (culprit_type, victim_type), share in table2.items():
        if culprit_type == victim_type:
            continue
        cross_nf += share
        if abs(order.get(victim_type, 0) - order.get(culprit_type, 0)) >= 2:
            two_hop += share

    # Table 3: per-NAT-instance culprit frequency.
    nat_rows: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for relation in relations:
        if type_of(relation.culprit_location) == "nat":
            victim_type = type_of(relation.victim_location)
            nat_rows[relation.culprit_location][victim_type] += (
                relation.score / total_score if total_score else 0.0
            )
    # Traffic split per NAT for the evenness claim.
    nat_traffic = Counter()
    for packet in run.trace.packets.values():
        for hop in packet.hops:
            if nf_types.get(hop.nf) == "nat":
                nat_traffic[hop.nf] += 1

    gaps_ms = [relation.gap_ns / MSEC for relation in relations]
    return {
        "table2": dict(table2),
        "cross_nf_share": cross_nf,
        "two_hop_share": two_hop,
        "table3": {nat: dict(row) for nat, row in nat_rows.items()},
        "nat_traffic": dict(nat_traffic),
        "gap_cdf_ms": cdf_points(gaps_ms),
        "n_victims": len(victims),
        "n_relations": len(relations),
        "trace": run.trace,
        "noise_events": len(run.noise.fired) if run.noise else 0,
    }
