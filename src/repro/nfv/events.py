"""Discrete-event core: a cancellable heap-based event loop.

The simulator schedules callbacks at integer-nanosecond timestamps.  Events
may be cancelled (e.g. a batch-completion event is rescheduled when an
interrupt stalls the NF mid-batch); cancellation is lazy — the heap entry is
flagged and skipped on pop, which keeps the loop simple and O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

Action = Callable[[], None]


@dataclass(order=True)
class _Entry:
    time_ns: int
    seq: int
    action: Optional[Action] = field(compare=False)

    @property
    def cancelled(self) -> bool:
        return self.action is None


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule` for cancellation."""

    __slots__ = ("_entry", "_loop")

    def __init__(self, entry: _Entry, loop: "EventLoop") -> None:
        self._entry = entry
        self._loop = loop

    @property
    def time_ns(self) -> int:
        return self._entry.time_ns

    @property
    def active(self) -> bool:
        return not self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._entry.action is not None:
            self._entry.action = None
            self._loop._live -= 1


class EventLoop:
    """Minimal discrete-event loop with monotonically advancing time."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self._now = 0
        self._processed = 0
        # Live (non-cancelled, not yet executed) events.  Maintained on
        # schedule/cancel/execute so pending() is O(1) instead of an O(n)
        # heap scan — the simulator polls it in its run loop.
        self._live = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._processed

    def schedule(self, time_ns: int, action: Action) -> EventHandle:
        """Run ``action`` at ``time_ns``.  Scheduling in the past is an error."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule event at {time_ns} before now={self._now}"
            )
        entry = _Entry(time_ns=time_ns, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def schedule_after(self, delay_ns: int, action: Action) -> EventHandle:
        """Run ``action`` ``delay_ns`` nanoseconds from now."""
        return self.schedule(self._now + delay_ns, action)

    def run(self, until_ns: Optional[int] = None, max_events: int = 0) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when the next event would fire after
        ``until_ns``, or after ``max_events`` events (0 means unlimited — the
        usual mode; ``max_events`` exists as a runaway-loop backstop for
        tests).  Returns the number of events executed by this call.
        """
        executed = 0
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ns is not None and entry.time_ns > until_ns:
                break
            heapq.heappop(self._heap)
            self._now = entry.time_ns
            action = entry.action
            entry.action = None
            self._live -= 1
            assert action is not None
            action()
            executed += 1
            self._processed += 1
            if max_events and executed >= max_events:
                break
        if until_ns is not None and self._now < until_ns:
            # Advance the clock to the bound: "simulate until t" holds even
            # when the next event lies beyond it (or none remain).
            self._now = until_ns
        return executed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live
