"""Live telemetry tap: the simulator-side record emitter.

:class:`LiveRecordTap` is an :class:`~repro.nfv.nf.NFHook` (plus the
source-side ``on_emit``/``on_exit`` callbacks the simulator offers to
``extra_hooks``) that turns a simulation run into per-stream
:class:`~repro.ingest.records.TelemetryRecord` sequences — the wire
format live NFs would ship to the always-on diagnosis service.

The tap is deliberately one-record-per-hop: arrival and read timestamps
ride inside the hop record emitted at depart time, so each stream's
records are emitted in non-decreasing time order (the event loop
processes events in time order, and a hop record's timestamp is the
depart event's time).  That monotonicity is what the ingestion layer's
sequence/watermark accounting relies on.

Hops still open at simulation end (queued or mid-service) emit no record,
mirroring :meth:`DiagTrace.from_sim_result` skipping hops with missing
read/depart times.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ingest.records import (
    TelemetryRecord,
    drop_record,
    emit_record,
    exit_record,
    hop_record,
)
from repro.nfv.packet import Packet


class LiveRecordTap:
    """Collects telemetry records from a simulation run, per stream."""

    def __init__(self) -> None:
        self.records: List[TelemetryRecord] = []
        self._seq: Dict[str, int] = {}
        # (nf, pid) -> [enqueue_ns, read_ns]; popped at depart.
        self._open: Dict[Tuple[str, int], List[int]] = {}

    def _next_seq(self, stream: str) -> int:
        seq = self._seq.get(stream, 0)
        self._seq[stream] = seq + 1
        return seq

    # -- source-side callbacks (simulator extra_hooks contract) ---------------

    def on_emit(self, source: str, time_ns: int, packet: Packet, target: str) -> None:
        self.records.append(
            emit_record(
                source, self._next_seq(source), time_ns, packet.pid,
                packet.flow.as_tuple(),
            )
        )

    def on_exit(self, last_nf: str, time_ns: int, packet: Packet) -> None:
        self.records.append(
            exit_record(last_nf, self._next_seq(last_nf), time_ns, packet.pid)
        )

    # -- NFHook interface ------------------------------------------------------

    def on_enqueue(self, nf: str, time_ns: int, packet: Packet, accepted: bool) -> None:
        if not accepted:
            self.records.append(
                drop_record(nf, self._next_seq(nf), time_ns, packet.pid)
            )
            return
        self._open[(nf, packet.pid)] = [time_ns, -1]

    def on_rx_batch(
        self, nf: str, time_ns: int, batch: Sequence[Tuple[Packet, int]]
    ) -> None:
        for packet, _enq in batch:
            hop = self._open.get((nf, packet.pid))
            if hop is not None:
                hop[1] = time_ns

    def on_tx_batch(
        self, nf: str, next_node: str, time_ns: int, packets: Sequence[Packet]
    ) -> None:
        for packet in packets:
            hop = self._open.pop((nf, packet.pid), None)
            if hop is None or hop[1] < 0:
                continue  # never enqueued here, or departed without a read
            self.records.append(
                hop_record(
                    nf, self._next_seq(nf), packet.pid,
                    arrival_ns=hop[0], read_ns=hop[1], depart_ns=time_ns,
                )
            )
