"""Simulation driver: wires sources, NFs, faults and hooks to an event loop.

The simulator also owns the ground-truth recorder.  Ground truth (exact
per-packet hop timings and identities) is what the evaluation compares
against; Microscope itself only sees what the runtime collector records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError, TopologyError
from repro.nfv.events import EventLoop
from repro.nfv.nf import FixedCost, NetworkFunction, NFHook
from repro.nfv.packet import FiveTuple, Packet
from repro.nfv.queues import DropRecord
from repro.nfv.sources import TrafficSource
from repro.nfv.topology import Topology


@dataclass
class HopRecord:
    """Ground-truth timing of one packet at one NF."""

    nf: str
    enqueue_ns: int
    read_ns: int = -1
    depart_ns: int = -1

    @property
    def queue_wait_ns(self) -> int:
        """Time spent in the input queue before being read."""
        if self.read_ns < 0:
            raise SimulationError(f"hop at {self.nf} never read")
        return self.read_ns - self.enqueue_ns

    @property
    def latency_ns(self) -> int:
        """Enqueue-to-departure latency at this NF."""
        if self.depart_ns < 0:
            raise SimulationError(f"hop at {self.nf} never departed")
        return self.depart_ns - self.enqueue_ns


@dataclass
class PacketTrace:
    """Everything ground truth knows about one packet's journey."""

    pid: int
    flow: FiveTuple
    source: str
    emitted_ns: int
    hops: List[HopRecord] = field(default_factory=list)
    dropped_at: Optional[str] = None
    dropped_ns: int = -1
    exited_ns: int = -1

    @property
    def completed(self) -> bool:
        return self.exited_ns >= 0

    @property
    def end_to_end_ns(self) -> int:
        if not self.completed:
            raise SimulationError(f"packet {self.pid} never exited")
        return self.exited_ns - self.emitted_ns

    def hop_at(self, nf: str) -> Optional[HopRecord]:
        for hop in self.hops:
            if hop.nf == nf:
                return hop
        return None

    def nf_path(self) -> Tuple[str, ...]:
        return tuple(hop.nf for hop in self.hops)


class GroundTruthRecorder(NFHook):
    """NF hook that keeps exact per-packet hop records."""

    def __init__(self) -> None:
        self.packets: Dict[int, PacketTrace] = {}
        self._open_hops: Dict[Tuple[str, int], HopRecord] = {}
        self.drops: List[DropRecord] = []

    # Source-side hook (called by the simulator, not the NF).
    def on_emit(self, source: str, time_ns: int, packet: Packet, target: str) -> None:
        if packet.pid in self.packets:
            raise SimulationError(f"duplicate pid {packet.pid}")
        self.packets[packet.pid] = PacketTrace(
            pid=packet.pid, flow=packet.flow, source=source, emitted_ns=time_ns
        )

    def on_exit(self, last_nf: str, time_ns: int, packet: Packet) -> None:
        self.packets[packet.pid].exited_ns = time_ns

    # NFHook interface.
    def on_enqueue(self, nf: str, time_ns: int, packet: Packet, accepted: bool) -> None:
        trace = self.packets[packet.pid]
        if not accepted:
            trace.dropped_at = nf
            trace.dropped_ns = time_ns
            self.drops.append(DropRecord(time_ns=time_ns, pid=packet.pid, node=nf))
            return
        hop = HopRecord(nf=nf, enqueue_ns=time_ns)
        trace.hops.append(hop)
        self._open_hops[(nf, packet.pid)] = hop

    def on_rx_batch(
        self, nf: str, time_ns: int, batch: Sequence[Tuple[Packet, int]]
    ) -> None:
        for packet, _enq in batch:
            hop = self._open_hops.get((nf, packet.pid))
            if hop is not None:
                hop.read_ns = time_ns

    def on_tx_batch(
        self, nf: str, next_node: str, time_ns: int, packets: Sequence[Packet]
    ) -> None:
        for packet in packets:
            hop = self._open_hops.pop((nf, packet.pid), None)
            if hop is not None:
                hop.depart_ns = time_ns


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    topology: Topology
    trace: GroundTruthRecorder
    duration_ns: int
    events: int

    @property
    def drops(self) -> List[DropRecord]:
        return self.trace.drops

    def completed_packets(self) -> List[PacketTrace]:
        return [p for p in self.trace.packets.values() if p.completed]

    def nf_stats(self) -> Dict[str, object]:
        return {name: nf.stats for name, nf in self.topology.nfs.items()}


class Simulator:
    """Runs traffic sources through a topology under optional fault injectors."""

    def __init__(
        self,
        topology: Topology,
        sources: Sequence[TrafficSource],
        injectors: Sequence[object] = (),
        extra_hooks: Sequence[NFHook] = (),
        end_ns: Optional[int] = None,
    ) -> None:
        topology.validate()
        for source in sources:
            if source.name not in topology.sources:
                raise TopologyError(
                    f"traffic source {source.name!r} not registered in topology"
                )
        self.topology = topology
        self.sources = list(sources)
        self.injectors = list(injectors)
        self.extra_hooks = list(extra_hooks)
        self.end_ns = end_ns
        self.loop = EventLoop()
        self.recorder = GroundTruthRecorder()

    def run(self) -> SimResult:
        """Execute the simulation to completion and return the result."""
        hooks: List[NFHook] = [self.recorder, *self.extra_hooks]
        for nf in self.topology.nfs.values():
            nf.hooks = list(hooks)
            nf.bind(self.loop, self._deliver)
        for injector in self.injectors:
            install = getattr(injector, "install", None)
            if install is None:
                raise SimulationError(f"injector {injector!r} has no install()")
            try:
                install(self.loop, self.topology.nfs)
            except TypeError:
                install(self.topology.nfs)  # BugSpec-style: no loop needed
        for source in self.sources:
            for time_ns, packet in source.schedule:
                self.loop.schedule(
                    time_ns,
                    self._make_emit(source, packet),
                )
        self.loop.run(until_ns=self.end_ns)
        return SimResult(
            topology=self.topology,
            trace=self.recorder,
            duration_ns=self.loop.now,
            events=self.loop.processed_events,
        )

    def _make_emit(self, source: TrafficSource, packet: Packet):
        def emit() -> None:
            now = self.loop.now
            packet.created_ns = now
            target = source.balancer(packet)
            self.recorder.on_emit(source.name, now, packet, target)
            for hook in self.extra_hooks:
                on_emit = getattr(hook, "on_emit", None)
                if on_emit is not None:
                    on_emit(source.name, now, packet, target)
            source.emitted += 1
            self._deliver(source.name, target, packet, now)

        return emit

    def _deliver(self, src: str, dst: str, packet: Packet, now_ns: int) -> None:
        if dst == "" or dst is None:
            self.recorder.on_exit(src, now_ns, packet)
            for hook in self.extra_hooks:
                on_exit = getattr(hook, "on_exit", None)
                if on_exit is not None:
                    on_exit(src, now_ns, packet)
            return
        if not self.topology.has_edge(src, dst):
            raise TopologyError(f"router at {src!r} picked undeclared edge to {dst!r}")
        delay = self.topology.delay_ns(src, dst)
        nf = self.topology.nfs[dst]
        self.loop.schedule(
            now_ns + delay, lambda: nf.enqueue(packet, self.loop.now)
        )


def calibrate_peak_rate(
    nf_factory,
    n_packets: int = 2048,
    flow: Optional[FiveTuple] = None,
) -> float:
    """Measure an NF's peak processing rate by offline stress test.

    Mirrors the paper's footnote 3: ``r_f`` is measured "by stress testing
    the NF offline with the same hardware and software settings".  We build
    a throwaway single-NF topology, saturate its queue, and divide packets
    by busy time.
    """
    from repro.nfv.sources import constant_target

    topo = Topology()
    nf: NetworkFunction = nf_factory()
    topo.add_nf(nf)
    topo.add_source("stress-src")
    topo.connect("stress-src", nf.name, delay_ns=0)
    test_flow = flow or FiveTuple.of("10.0.0.1", "10.0.0.2", 1234, 80)
    packets = [
        (0, Packet(pid=i, flow=test_flow, ipid=i % 65_536)) for i in range(n_packets)
    ]
    source = TrafficSource("stress-src", packets, constant_target(nf.name))
    result = Simulator(topo, [source]).run()
    done = result.completed_packets()
    if not done:
        raise SimulationError("calibration run completed no packets")
    first_read = min(p.hops[0].read_ns for p in done)
    last_depart = max(p.hops[0].depart_ns for p in done)
    if last_depart <= first_read:
        raise SimulationError("calibration run too short to measure a rate")
    return len(done) * 1e9 / (last_depart - first_read)
