"""Batch-processing network function model.

An NF mirrors the DPDK run-to-completion loop the paper instruments: it
reads up to ``max_batch`` (default 32) packets from its input queue, spends
a per-packet service cost on each, then writes the batch to downstream
queues.  Reads and writes fire :class:`NFHook` callbacks — Microscope's
runtime collector and the ground-truth recorder are both implemented as
hooks, exactly mirroring how the real system instruments DPDK's RX/TX burst
functions without touching NF internals.

Interrupts (CPU preemption, SoftIRQ, etc.) stall the NF: a stall that lands
mid-batch extends the in-flight batch's completion time; a stall on an idle
NF delays its next batch read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.nfv.events import EventHandle, EventLoop
from repro.nfv.packet import Packet
from repro.nfv.queues import DEFAULT_CAPACITY, InputQueue

#: DPDK's typical maximum RX burst size.
DEFAULT_MAX_BATCH = 32

Router = Callable[[Packet], Optional[str]]


class ServiceModel(Protocol):
    """Per-packet processing-cost model."""

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        """Service time for ``packet`` when processing starts at ``now_ns``."""
        ...


class FixedCost:
    """Constant per-packet cost with optional lognormal jitter.

    ``jitter`` is the standard deviation of the multiplicative noise; zero
    gives a fully deterministic NF, small values (0.02-0.1) model cache
    misses and pipeline variation.
    """

    def __init__(
        self,
        base_ns: int,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base_ns <= 0:
            raise ConfigurationError(f"base cost must be positive, got {base_ns}")
        if jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ConfigurationError("jitter requires an rng")
        self.base_ns = base_ns
        self.jitter = jitter
        self._rng = rng

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        if self.jitter == 0.0:
            return self.base_ns
        assert self._rng is not None
        factor = float(self._rng.lognormal(mean=0.0, sigma=self.jitter))
        return max(1, int(round(self.base_ns * factor)))


class FlowConditionalCost:
    """Wraps a service model with a slow path for matching flows.

    Models the paper's injected NF bug: "processes specific incoming flows
    at a low rate" (section 6.2, NF code bugs).
    """

    def __init__(
        self,
        inner: ServiceModel,
        predicate: Callable[[Packet], bool],
        slow_ns: int,
    ) -> None:
        if slow_ns <= 0:
            raise ConfigurationError(f"slow cost must be positive, got {slow_ns}")
        self.inner = inner
        self.predicate = predicate
        self.slow_ns = slow_ns
        self.triggered = 0

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        if self.predicate(packet):
            self.triggered += 1
            return self.slow_ns
        return self.inner.cost_ns(packet, now_ns)


class NFHook(Protocol):
    """Observer of NF-level packet I/O (collector / ground-truth recorder)."""

    def on_enqueue(self, nf: str, time_ns: int, packet: Packet, accepted: bool) -> None:
        ...

    def on_rx_batch(
        self, nf: str, time_ns: int, batch: Sequence[Tuple[Packet, int]]
    ) -> None:
        ...

    def on_tx_batch(
        self, nf: str, next_node: str, time_ns: int, packets: Sequence[Packet]
    ) -> None:
        ...


@dataclass
class NFStats:
    """Aggregate counters exposed per NF after a run."""

    rx_packets: int = 0
    tx_packets: int = 0
    rx_batches: int = 0
    busy_ns: int = 0
    stall_ns: int = 0


class NetworkFunction:
    """One NF instance bound to (the simulation of) a dedicated core."""

    #: Marker returned by routers for packets leaving the NF graph.
    EXIT = None

    def __init__(
        self,
        name: str,
        nf_type: str,
        service: ServiceModel,
        router: Router,
        max_batch: int = DEFAULT_MAX_BATCH,
        queue_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch}")
        self.name = name
        self.nf_type = nf_type
        self.service = service
        self.router = router
        self.max_batch = max_batch
        self.queue = InputQueue(node=name, capacity=queue_capacity)
        self.stats = NFStats()
        self.hooks: List[NFHook] = []
        #: Extra fixed cost per batch, used to model collector overhead.
        self.per_batch_overhead_ns = 0
        self.per_packet_overhead_ns = 0
        self._loop: Optional[EventLoop] = None
        self._deliver: Optional[Callable[[str, str, Packet, int], None]] = None
        self._current_batch: Optional[List[Tuple[Packet, int]]] = None
        self._completion: Optional[EventHandle] = None
        self._start_handle: Optional[EventHandle] = None
        self._stall_until = 0

    # -- wiring -----------------------------------------------------------

    def bind(
        self, loop: EventLoop, deliver: Callable[[str, str, Packet, int], None]
    ) -> None:
        """Attach the NF to a simulation: its clock and the delivery fabric.

        ``deliver(src, dst, packet, time_ns)`` hands a processed packet to
        the downstream node (or the exit sink when ``dst`` is "").
        """
        self._loop = loop
        self._deliver = deliver

    # -- data path --------------------------------------------------------

    def enqueue(self, packet: Packet, now_ns: int) -> bool:
        """Packet arrival into this NF's input queue."""
        accepted = self.queue.push(packet, now_ns)
        for hook in self.hooks:
            hook.on_enqueue(self.name, now_ns, packet, accepted)
        if accepted:
            self._maybe_start()
        return accepted

    def _maybe_start(self) -> None:
        if self._loop is None:
            raise SimulationError(f"NF {self.name} used before bind()")
        if self._current_batch is not None or self._start_handle is not None:
            return
        if len(self.queue) == 0:
            return
        now = self._loop.now
        start = max(now, self._stall_until)
        # Always go through the event loop, even for start == now: packets
        # enqueued by other events at this same nanosecond must land in the
        # same batch read, exactly like a DPDK poll picking up everything
        # that arrived since the last burst.
        self._start_handle = self._loop.schedule(start, self._begin_batch)

    def _begin_batch(self) -> None:
        assert self._loop is not None
        self._start_handle = None
        if self._current_batch is not None or len(self.queue) == 0:
            return
        now = self._loop.now
        if now < self._stall_until:
            # A stall landed between scheduling and firing; try again later.
            self._start_handle = self._loop.schedule(self._stall_until, self._begin_batch)
            return
        batch = self.queue.pop_batch(self.max_batch)
        for hook in self.hooks:
            hook.on_rx_batch(self.name, now, batch)
        total = self.per_batch_overhead_ns
        for packet, _enq in batch:
            total += self.service.cost_ns(packet, now) + self.per_packet_overhead_ns
        self.stats.rx_batches += 1
        self.stats.rx_packets += len(batch)
        self.stats.busy_ns += total
        self._current_batch = batch
        self._completion = self._loop.schedule_after(total, self._finish_batch)

    def _finish_batch(self) -> None:
        assert self._loop is not None and self._deliver is not None
        batch = self._current_batch
        assert batch is not None
        now = self._loop.now
        self._current_batch = None
        self._completion = None
        by_next: Dict[str, List[Packet]] = {}
        for packet, _enq in batch:
            packet.visited(self.name)
            next_node = self.router(packet)
            key = next_node if next_node is not None else ""
            by_next.setdefault(key, []).append(packet)
        for next_node, packets in by_next.items():
            for hook in self.hooks:
                hook.on_tx_batch(self.name, next_node, now, packets)
            for packet in packets:
                self._deliver(self.name, next_node, packet, now)
            self.stats.tx_packets += len(packets)
        self._maybe_start()

    # -- fault interface ---------------------------------------------------

    def stall(self, duration_ns: int) -> None:
        """Stall the NF for ``duration_ns`` starting now (interrupt model).

        Extends an in-flight batch's completion, or delays the next batch
        read while idle.  Overlapping stalls accumulate.
        """
        assert self._loop is not None
        if duration_ns <= 0:
            raise ConfigurationError(f"stall duration must be positive: {duration_ns}")
        now = self._loop.now
        self._stall_until = max(self._stall_until, now) + duration_ns
        self.stats.stall_ns += duration_ns
        if self._completion is not None and self._completion.active:
            new_time = self._completion.time_ns + duration_ns
            self._completion.cancel()
            self._completion = self._loop.schedule(new_time, self._finish_batch)
        elif self._start_handle is not None and self._start_handle.active:
            if self._start_handle.time_ns < self._stall_until:
                self._start_handle.cancel()
                self._start_handle = self._loop.schedule(
                    self._stall_until, self._begin_batch
                )

    # -- introspection -----------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._current_batch is not None

    def __repr__(self) -> str:
        return f"NetworkFunction({self.name!r}, type={self.nf_type!r})"
