"""Discrete-event NFV substrate: packets, queues, NFs, faults, simulator.

This package stands in for the paper's DPDK testbed.  It reproduces the
queue-level behaviour Microscope observes — batched reads, bounded input
queues, interrupt stalls, propagation across a DAG of NF instances — at
integer-nanosecond resolution.
"""

from repro.nfv.events import EventHandle, EventLoop
from repro.nfv.faults import (
    BugSpec,
    InterruptInjector,
    InterruptSpec,
    RandomInterrupts,
    flow_set_predicate,
    subnet_port_predicate,
)
from repro.nfv.nf import (
    DEFAULT_MAX_BATCH,
    FixedCost,
    FlowConditionalCost,
    NetworkFunction,
    NFHook,
    NFStats,
    ServiceModel,
)
from repro.nfv.nfs import (
    DEFAULT_COSTS_NS,
    RoundRobinBalancer,
    Switch,
    Firewall,
    FirewallRule,
    Monitor,
    Nat,
    Vpn,
    make_nf,
    peak_rate_pps,
)
from repro.nfv.packet import PROTO_TCP, PROTO_UDP, FiveTuple, Packet, ip_from_str, ip_to_str
from repro.nfv.queues import DEFAULT_CAPACITY, DropRecord, InputQueue
from repro.nfv.simulator import (
    GroundTruthRecorder,
    HopRecord,
    PacketTrace,
    SimResult,
    Simulator,
    calibrate_peak_rate,
)
from repro.nfv.sources import TrafficSource, constant_target, flow_hash_balancer
from repro.nfv.topology import DEFAULT_DELAY_NS, Topology


def __getattr__(name):
    # Lazy: the tap pulls in repro.ingest, whose trace builder imports
    # repro.core.records, which imports repro.nfv.packet — an eager import
    # here would close that loop during package initialization.
    if name == "LiveRecordTap":
        from repro.nfv.tap import LiveRecordTap

        return LiveRecordTap
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_COSTS_NS",
    "DEFAULT_DELAY_NS",
    "DEFAULT_MAX_BATCH",
    "BugSpec",
    "DropRecord",
    "EventHandle",
    "EventLoop",
    "Firewall",
    "FirewallRule",
    "FiveTuple",
    "FixedCost",
    "FlowConditionalCost",
    "GroundTruthRecorder",
    "HopRecord",
    "InputQueue",
    "InterruptInjector",
    "InterruptSpec",
    "LiveRecordTap",
    "Monitor",
    "NFHook",
    "NFStats",
    "Nat",
    "NetworkFunction",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketTrace",
    "RandomInterrupts",
    "RoundRobinBalancer",
    "ServiceModel",
    "SimResult",
    "Simulator",
    "Switch",
    "TrafficSource",
    "Topology",
    "Vpn",
    "calibrate_peak_rate",
    "constant_target",
    "flow_hash_balancer",
    "flow_set_predicate",
    "ip_from_str",
    "ip_to_str",
    "make_nf",
    "peak_rate_pps",
    "subnet_port_predicate",
]
