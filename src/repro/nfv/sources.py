"""Traffic sources: replay a packet schedule into the NF graph.

A source plays the MoonGen role from the paper: it emits packets at
pre-computed timestamps.  Emission targets are picked per packet by a
``balancer`` callable, modelling the flow-hash load balancing in front of
the NAT tier (Figure 10).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.nfv.packet import Packet

Balancer = Callable[[Packet], str]


class TrafficSource:
    """Emits a time-ordered packet schedule.

    ``schedule`` is a sequence of ``(time_ns, packet)`` pairs; it must be
    sorted by time.  The simulator registers one emission event per packet.
    """

    def __init__(
        self,
        name: str,
        schedule: Sequence[Tuple[int, Packet]],
        balancer: Balancer,
    ) -> None:
        if any(t1 > t2 for (t1, _), (t2, _) in zip(schedule, schedule[1:])):
            raise ConfigurationError(f"source {name!r} schedule is not time-sorted")
        self.name = name
        self.schedule: List[Tuple[int, Packet]] = list(schedule)
        self.balancer = balancer
        self.emitted = 0

    def __len__(self) -> int:
        return len(self.schedule)

    def end_ns(self) -> int:
        """Timestamp of the last scheduled emission (0 when empty)."""
        return self.schedule[-1][0] if self.schedule else 0


def constant_target(target: str) -> Balancer:
    """Balancer that sends every packet to one node."""
    return lambda packet: target


def flow_hash_balancer(targets: Sequence[str]) -> Balancer:
    """Flow-level load balancing by hash of the five-tuple.

    Mirrors the paper's "incoming traffic is load balanced at flow level
    based on the hash of packet header fields".
    """
    if not targets:
        raise ConfigurationError("flow_hash_balancer needs at least one target")
    frozen = list(targets)

    def balance(packet: Packet) -> str:
        return frozen[hash(packet.flow) % len(frozen)]

    return balance
