"""Bounded input queues between NFs.

Each NF owns a single input queue (as in the paper's DPDK setting, where the
RX ring is the queue Microscope observes).  The queue records enqueue times
so the simulator can produce ground-truth per-packet latency, and exposes
drop accounting for loss-victim detection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.nfv.packet import Packet

#: DPDK default RX ring size used in the paper's implementation notes.
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class DropRecord:
    """One packet dropped on queue overflow."""

    time_ns: int
    pid: int
    node: str


class InputQueue:
    """FIFO with bounded capacity and enqueue-time tracking."""

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.node = node
        self.capacity = capacity
        self._items: Deque[Tuple[Packet, int]] = deque()
        self.drops: List[DropRecord] = []
        #: Monotone counters: total packets offered / accepted / dequeued.
        self.offered = 0
        self.accepted = 0
        self.dequeued = 0
        self._peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def peak_depth(self) -> int:
        """Deepest occupancy observed (for queue-length figures)."""
        return self._peak_depth

    def push(self, packet: Packet, now_ns: int) -> bool:
        """Enqueue ``packet``; returns False (and records a drop) when full."""
        self.offered += 1
        if len(self._items) >= self.capacity:
            self.drops.append(DropRecord(time_ns=now_ns, pid=packet.pid, node=self.node))
            return False
        self._items.append((packet, now_ns))
        self.accepted += 1
        if len(self._items) > self._peak_depth:
            self._peak_depth = len(self._items)
        return True

    def pop_batch(self, max_batch: int) -> List[Tuple[Packet, int]]:
        """Dequeue up to ``max_batch`` packets with their enqueue times."""
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        batch: List[Tuple[Packet, int]] = []
        while self._items and len(batch) < max_batch:
            batch.append(self._items.popleft())
            self.dequeued += 1
        return batch

    def head_enqueue_time(self) -> Optional[int]:
        """Enqueue time of the oldest queued packet, or None when empty."""
        if not self._items:
            return None
        return self._items[0][1]
