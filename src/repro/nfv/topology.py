"""DAG topology of traffic sources and NF instances.

The topology owns the static structure Microscope needs for diagnosis: who
feeds whom, and the propagation delay of each edge.  Routers inside NFs pick
the concrete next hop dynamically (e.g. the firewall's match/no-match
branch), but every hop they pick must be a declared edge — the simulator
enforces this at delivery time, which catches mis-wired routers early.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.nfv.nf import NetworkFunction

#: Default one-hop propagation delay (NIC + wire + switch), nanoseconds.
DEFAULT_DELAY_NS = 500


class Topology:
    """Named DAG of sources and NFs with per-edge propagation delays."""

    def __init__(self) -> None:
        self.nfs: Dict[str, NetworkFunction] = {}
        self.sources: Set[str] = set()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # -- construction -------------------------------------------------------

    def add_nf(self, nf: NetworkFunction) -> NetworkFunction:
        if nf.name in self.nfs or nf.name in self.sources:
            raise TopologyError(f"duplicate node name {nf.name!r}")
        self.nfs[nf.name] = nf
        return nf

    def add_source(self, name: str) -> None:
        if name in self.nfs or name in self.sources:
            raise TopologyError(f"duplicate node name {name!r}")
        self.sources.add(name)

    def connect(self, src: str, dst: str, delay_ns: int = DEFAULT_DELAY_NS) -> None:
        """Declare a directed edge from ``src`` to ``dst``."""
        if src not in self.nfs and src not in self.sources:
            raise TopologyError(f"unknown source node {src!r}")
        if dst not in self.nfs:
            raise TopologyError(f"unknown destination NF {dst!r}")
        if delay_ns < 0:
            raise TopologyError(f"negative delay on edge {src!r}->{dst!r}")
        self._edges[(src, dst)] = delay_ns
        self._succ.setdefault(src, set()).add(dst)
        self._pred.setdefault(dst, set()).add(src)

    # -- queries -------------------------------------------------------------

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def delay_ns(self, src: str, dst: str) -> int:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise TopologyError(f"no edge {src!r} -> {dst!r}") from None

    def successors(self, node: str) -> Set[str]:
        return set(self._succ.get(node, set()))

    def predecessors(self, node: str) -> Set[str]:
        return set(self._pred.get(node, set()))

    def upstream_closure(self, node: str) -> Set[str]:
        """All nodes (NFs and sources) that can reach ``node``."""
        seen: Set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for pred in self._pred.get(current, set()):
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        return seen

    def nodes(self) -> Iterable[str]:
        yield from self.sources
        yield from self.nfs

    def topological_order(self) -> List[str]:
        """Topologically sorted node names; raises on cycles."""
        in_deg = {node: 0 for node in self.nodes()}
        for (_src, dst) in self._edges:
            in_deg[dst] += 1
        ready = sorted(node for node, deg in in_deg.items() if deg == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._succ.get(node, set())):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(in_deg):
            raise TopologyError("NF graph has a cycle")
        return order

    def validate(self) -> None:
        """Check the graph is a DAG and every NF is reachable from a source."""
        self.topological_order()
        reachable: Set[str] = set()
        frontier = list(self.sources)
        while frontier:
            current = frontier.pop()
            for succ in self._succ.get(current, set()):
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        unreachable = set(self.nfs) - reachable
        if unreachable:
            raise TopologyError(
                f"NFs unreachable from any source: {sorted(unreachable)}"
            )

    def nf_types(self) -> Dict[str, str]:
        """Map of NF instance name to NF type (for NF-set aggregation)."""
        return {name: nf.nf_type for name, nf in self.nfs.items()}

    def peak_rates_pps(self) -> Dict[str, float]:
        """Per-NF peak processing rate ``r_f`` derived from service models.

        Works for service models exposing a ``base_ns`` (possibly nested
        inside wrappers with an ``inner`` attribute); NFs with opaque models
        must be calibrated via :func:`repro.nfv.simulator.calibrate_peak_rate`.
        """
        rates: Dict[str, float] = {}
        for name, nf in self.nfs.items():
            base = _find_base_ns(nf.service)
            if base is not None:
                rates[name] = 1e9 / base
        return rates


def _find_base_ns(service: object) -> Optional[int]:
    seen = 0
    current = service
    while current is not None and seen < 8:
        base = getattr(current, "base_ns", None)
        if base is not None:
            return int(base)
        current = getattr(current, "inner", None)
        seen += 1
    return None
