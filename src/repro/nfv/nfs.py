"""Concrete NF types used in the paper's evaluation chain (Figure 10).

The paper runs Click-DPDK NATs, Firewalls and VPNs plus a hand-written DPDK
Monitor.  We reproduce each type's *functional* behaviour (address
translation, rule matching and branching, per-flow accounting, encryption
cost) on top of :class:`~repro.nfv.nf.NetworkFunction`, with per-packet
costs calibrated so that the evaluation workloads produce the same queueing
regimes as the paper's testbed.

Default peak rates (1 / base cost):

========  ============  ==========
NF type   base cost     peak rate
========  ============  ==========
NAT       400 ns        2.50 Mpps
Firewall  500 ns        2.00 Mpps
Monitor   320 ns        3.13 Mpps
VPN       640 ns        1.56 Mpps
========  ============  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nfv.nf import FixedCost, NetworkFunction, Router, ServiceModel
from repro.nfv.packet import FiveTuple, Packet

#: Base per-packet service costs (nanoseconds) per NF type.
DEFAULT_COSTS_NS: Dict[str, int] = {
    "nat": 400,
    "firewall": 500,
    "monitor": 320,
    "vpn": 640,
    "switch": 60,
}


def peak_rate_pps(nf_type: str, cost_ns: Optional[int] = None) -> float:
    """Peak processing rate for an NF type (the paper's ``r_f``).

    The paper measures ``r_f`` by offline stress testing; in the simulator
    the peak rate is the inverse of the base per-packet cost.
    """
    base = cost_ns if cost_ns is not None else DEFAULT_COSTS_NS[nf_type]
    return 1e9 / base


def _service(
    nf_type: str,
    cost_ns: Optional[int],
    jitter: float,
    rng: Optional[np.random.Generator],
) -> ServiceModel:
    base = cost_ns if cost_ns is not None else DEFAULT_COSTS_NS[nf_type]
    return FixedCost(base_ns=base, jitter=jitter, rng=rng)


class Nat(NetworkFunction):
    """Source-NAT: allocates a translated (address, port) per flow.

    Translation is applied to the packet's flow key only when ``rewrite`` is
    True; either way the NAT pays the table-lookup cost, which is what the
    diagnosis cares about.  The translation table grows per new flow, which
    makes the first packet of a flow marginally more expensive — a realistic
    micro-behaviour that adds natural service-time variation.
    """

    def __init__(
        self,
        name: str,
        router: Router,
        cost_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        rewrite: bool = False,
        public_ip: int = 0x0A000001,
        **kwargs: object,
    ) -> None:
        service = _service("nat", cost_ns, jitter, rng)
        super().__init__(name, "nat", _NatService(service, self), router, **kwargs)
        self.rewrite = rewrite
        self.public_ip = public_ip
        self.table: Dict[FiveTuple, int] = {}
        self._next_port = 10_000

    def translate(self, packet: Packet) -> None:
        flow = packet.flow
        port = self.table.get(flow)
        if port is None:
            port = self._next_port
            self._next_port = 10_000 + (self._next_port - 9_999) % 50_000
            self.table[flow] = port
        if self.rewrite:
            packet.flow = FiveTuple(
                self.public_ip, flow.dst_ip, port, flow.dst_port, flow.proto
            )


class _NatService:
    """Service model that performs NAT table work before the base cost."""

    def __init__(self, inner: ServiceModel, nat: "Nat") -> None:
        self.inner = inner
        self.nat = nat

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        new_flow = packet.flow not in self.nat.table
        self.nat.translate(packet)
        cost = self.inner.cost_ns(packet, now_ns)
        if new_flow:
            cost += cost // 4  # table insertion penalty
        return cost


@dataclass(frozen=True)
class FirewallRule:
    """Match on five-tuple fields; ``None`` wildcards a field."""

    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    src_port: Optional[Tuple[int, int]] = None
    dst_port: Optional[Tuple[int, int]] = None
    proto: Optional[int] = None
    action: str = "monitor"

    def matches(self, flow: FiveTuple) -> bool:
        if self.src_ip is not None and flow.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and flow.dst_ip != self.dst_ip:
            return False
        if self.src_port is not None and not (
            self.src_port[0] <= flow.src_port <= self.src_port[1]
        ):
            return False
        if self.dst_port is not None and not (
            self.dst_port[0] <= flow.dst_port <= self.dst_port[1]
        ):
            return False
        if self.proto is not None and flow.proto != self.proto:
            return False
        return True


class Firewall(NetworkFunction):
    """Rule-matching firewall that branches traffic (Figure 10).

    Flows matching a rule with action ``monitor`` are forwarded to the
    monitor path; everything else goes straight to the VPN path.  The
    concrete next-hop names are chosen by ``route_match`` / ``route_default``
    callables so the same class serves any topology.
    """

    def __init__(
        self,
        name: str,
        route_match: Callable[[Packet], Optional[str]],
        route_default: Callable[[Packet], Optional[str]],
        rules: Sequence[FirewallRule] = (),
        cost_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        **kwargs: object,
    ) -> None:
        self.rules: List[FirewallRule] = list(rules)
        self._route_match = route_match
        self._route_default = route_default
        service = _service("firewall", cost_ns, jitter, rng)
        super().__init__(name, "firewall", service, self._route, **kwargs)
        self.matched = 0
        self.passed = 0

    def _route(self, packet: Packet) -> Optional[str]:
        for rule in self.rules:
            if rule.matches(packet.flow):
                if rule.action == "drop":
                    self.matched += 1
                    return NetworkFunction.EXIT
                self.matched += 1
                return self._route_match(packet)
        self.passed += 1
        return self._route_default(packet)


class Monitor(NetworkFunction):
    """Per-flow byte/packet accounting NF (the paper implemented its own)."""

    def __init__(
        self,
        name: str,
        router: Router,
        cost_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        **kwargs: object,
    ) -> None:
        inner = _service("monitor", cost_ns, jitter, rng)
        super().__init__(name, "monitor", _MonitorService(inner, self), router, **kwargs)
        self.flow_packets: Dict[FiveTuple, int] = {}
        self.flow_bytes: Dict[FiveTuple, int] = {}

    def account(self, packet: Packet) -> None:
        self.flow_packets[packet.flow] = self.flow_packets.get(packet.flow, 0) + 1
        self.flow_bytes[packet.flow] = (
            self.flow_bytes.get(packet.flow, 0) + packet.size_bytes
        )


class _MonitorService:
    def __init__(self, inner: ServiceModel, monitor: "Monitor") -> None:
        self.inner = inner
        self.monitor = monitor

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        self.monitor.account(packet)
        return self.inner.cost_ns(packet, now_ns)


class Vpn(NetworkFunction):
    """Encrypting VPN endpoint: cost scales mildly with packet size."""

    #: Extra nanoseconds of encryption work per 64 bytes of payload.
    PER_64B_NS = 18

    def __init__(
        self,
        name: str,
        router: Router,
        cost_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        **kwargs: object,
    ) -> None:
        inner = _service("vpn", cost_ns, jitter, rng)
        super().__init__(name, "vpn", _VpnService(inner), router, **kwargs)


class _VpnService:
    def __init__(self, inner: ServiceModel) -> None:
        self.inner = inner

    def cost_ns(self, packet: Packet, now_ns: int) -> int:
        blocks = max(1, (packet.size_bytes + 63) // 64) - 1
        return self.inner.cost_ns(packet, now_ns) + blocks * Vpn.PER_64B_NS


class RoundRobinBalancer(NetworkFunction):
    """Load balancer that assigns paths *dynamically* (per packet).

    The paper notes its path side channel "does not work for NFs that
    assign path dynamically such as load balancers" (section 5): a
    downstream packet could have come via any replica.  This NF exists to
    exercise exactly that case — reconstruction falls back to timing and
    order alone, and the tests quantify the graceful degradation.
    """

    def __init__(
        self,
        name: str,
        targets: Sequence[str],
        cost_ns: int = 120,
        **kwargs: object,
    ) -> None:
        if not targets:
            raise ConfigurationError("balancer needs at least one target")
        self.targets = list(targets)
        self._next = 0
        super().__init__(
            name, "balancer", FixedCost(cost_ns), self._route, **kwargs
        )

    def _route(self, packet: Packet) -> str:
        target = self.targets[self._next]
        self._next = (self._next + 1) % len(self.targets)
        return target


class Switch(NetworkFunction):
    """Software switch / NIC treated as just another NF (section 7).

    The paper's footnote 1 assumes switches are not the cause, but notes
    they "can easily [be treated] as another NF in the system for
    diagnosis if needed" — this class is that treatment: a very fast
    store-and-forward element whose queue records participate in diagnosis
    exactly like any NF's.
    """

    def __init__(
        self,
        name: str,
        router: Router,
        cost_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        **kwargs: object,
    ) -> None:
        service = _service("switch", cost_ns, jitter, rng)
        super().__init__(name, "switch", service, router, **kwargs)


def make_nf(
    nf_type: str,
    name: str,
    router: Router,
    **kwargs: object,
) -> NetworkFunction:
    """Factory for simple (single-router) NF types.

    Firewalls need two routes and must be constructed directly.
    """
    factories: Dict[str, type] = {
        "nat": Nat,
        "monitor": Monitor,
        "vpn": Vpn,
        "switch": Switch,
    }
    if nf_type == "firewall":
        raise ConfigurationError("construct Firewall directly; it needs two routes")
    if nf_type not in factories:
        raise ConfigurationError(f"unknown NF type {nf_type!r}")
    return factories[nf_type](name, router, **kwargs)
