"""Fault injection: interrupts, flow-triggered bugs, background noise.

These model the root-cause classes the paper injects for ground truth
(section 6.2) plus the "natural" fine-timescale noise present in the wild
run (section 6.5): CPU interrupts, context switches, and flow-dependent
slow paths in NF code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nfv.events import EventLoop
from repro.nfv.nf import FlowConditionalCost, NetworkFunction
from repro.nfv.packet import FiveTuple, Packet


@dataclass(frozen=True)
class InterruptSpec:
    """One scheduled NF stall (models a CPU interrupt / context switch)."""

    nf: str
    at_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ConfigurationError(f"interrupt time must be >= 0: {self.at_ns}")
        if self.duration_ns <= 0:
            raise ConfigurationError(
                f"interrupt duration must be positive: {self.duration_ns}"
            )


class InterruptInjector:
    """Schedules explicit interrupts onto NFs."""

    def __init__(self, specs: Sequence[InterruptSpec]) -> None:
        self.specs: List[InterruptSpec] = list(specs)
        self.fired: List[InterruptSpec] = []

    def install(self, loop: EventLoop, nfs: dict) -> None:
        for spec in self.specs:
            if spec.nf not in nfs:
                raise ConfigurationError(f"interrupt targets unknown NF {spec.nf!r}")
            nf = nfs[spec.nf]

            def fire(nf: NetworkFunction = nf, spec: InterruptSpec = spec) -> None:
                nf.stall(spec.duration_ns)
                self.fired.append(spec)

            loop.schedule(spec.at_ns, fire)


class RandomInterrupts:
    """Poisson background interrupts on a set of NFs (wild-run noise).

    ``rate_per_s`` is the per-NF interrupt rate; durations are drawn
    uniformly from ``duration_range_ns``.  Every fired interrupt is recorded
    so "natural" culprits can be cross-checked in evaluation.
    """

    def __init__(
        self,
        nf_names: Sequence[str],
        rate_per_s: float,
        duration_range_ns: Tuple[int, int],
        rng: np.random.Generator,
        start_ns: int = 0,
        end_ns: Optional[int] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_per_s}")
        lo, hi = duration_range_ns
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad duration range: {duration_range_ns}")
        self.nf_names = list(nf_names)
        self.rate_per_s = rate_per_s
        self.duration_range_ns = duration_range_ns
        self.rng = rng
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.fired: List[InterruptSpec] = []

    def install(self, loop: EventLoop, nfs: dict) -> None:
        mean_gap_ns = 1e9 / self.rate_per_s
        lo, hi = self.duration_range_ns
        for name in self.nf_names:
            if name not in nfs:
                raise ConfigurationError(f"noise targets unknown NF {name!r}")
            nf = nfs[name]

            def schedule_next(after_ns: int, nf: NetworkFunction = nf) -> None:
                gap = max(1, int(self.rng.exponential(mean_gap_ns)))
                at = after_ns + gap
                if self.end_ns is not None and at > self.end_ns:
                    return

                def fire() -> None:
                    duration = int(self.rng.integers(lo, hi + 1))
                    nf.stall(duration)
                    self.fired.append(
                        InterruptSpec(nf=nf.name, at_ns=loop.now, duration_ns=duration)
                    )
                    schedule_next(loop.now)

                loop.schedule(at, fire)

            schedule_next(self.start_ns)


@dataclass
class BugSpec:
    """A flow-triggered slow path installed into one NF.

    Reproduces the paper's injected NF bug: the target NF processes packets
    of matching flows at a much lower rate (0.05 Mpps in the paper — i.e. a
    20 µs per-packet cost).
    """

    nf: str
    predicate: Callable[[FiveTuple], bool]
    slow_ns: int = 20_000
    description: str = "flow-triggered slow path"

    def install(self, nfs: dict) -> FlowConditionalCost:
        if self.nf not in nfs:
            raise ConfigurationError(f"bug targets unknown NF {self.nf!r}")
        nf = nfs[self.nf]

        def packet_predicate(packet: Packet) -> bool:
            return self.predicate(packet.flow)

        wrapped = FlowConditionalCost(nf.service, packet_predicate, self.slow_ns)
        nf.service = wrapped
        return wrapped


def flow_set_predicate(flows: Sequence[FiveTuple]) -> Callable[[FiveTuple], bool]:
    """Predicate matching an explicit set of five-tuples."""
    frozen = frozenset(flows)
    return lambda flow: flow in frozen


def subnet_port_predicate(
    src_ip: Optional[int] = None,
    dst_ip: Optional[int] = None,
    src_ports: Optional[Tuple[int, int]] = None,
    dst_ports: Optional[Tuple[int, int]] = None,
) -> Callable[[FiveTuple], bool]:
    """Predicate matching exact IPs and/or port ranges (section 6.4 bug)."""

    def check(flow: FiveTuple) -> bool:
        if src_ip is not None and flow.src_ip != src_ip:
            return False
        if dst_ip is not None and flow.dst_ip != dst_ip:
            return False
        if src_ports is not None and not src_ports[0] <= flow.src_port <= src_ports[1]:
            return False
        if dst_ports is not None and not dst_ports[0] <= flow.dst_port <= dst_ports[1]:
            return False
        return True

    return check
