"""Packets and five-tuples.

A :class:`FiveTuple` identifies a flow; a :class:`Packet` is one datagram
traversing the NF graph.  Packets carry a 16-bit IPID like real IPv4 headers
— Microscope's runtime collector identifies packets across NFs by IPID plus
side-channel information, so the simulator must reproduce IPID collisions
faithfully (Figure 9 in the paper).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Tuple

#: Protocol numbers used throughout the package.
PROTO_TCP = 6
PROTO_UDP = 17

_MAX_PORT = 65_535
_MAX_IPID = 65_535


def ip_from_str(dotted: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer address."""
    return int(ipaddress.IPv4Address(dotted))


def ip_to_str(addr: int) -> str:
    """Render a 32-bit integer address as dotted-quad notation."""
    return str(ipaddress.IPv4Address(addr))


@dataclass(frozen=True, order=True)
class FiveTuple:
    """Classic flow key: source/destination address and port, protocol."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    def __post_init__(self) -> None:
        for name in ("src_ip", "dst_ip"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{name} out of range: {value}")
        for name in ("src_port", "dst_port"):
            value = getattr(self, name)
            if not 0 <= value <= _MAX_PORT:
                raise ValueError(f"{name} out of range: {value}")
        if not 0 <= self.proto <= 255:
            raise ValueError(f"proto out of range: {self.proto}")

    @classmethod
    def of(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        proto: int = PROTO_TCP,
    ) -> "FiveTuple":
        """Build a flow key from dotted-quad addresses."""
        return cls(ip_from_str(src_ip), ip_from_str(dst_ip), src_port, dst_port, proto)

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)

    def __str__(self) -> str:
        return (
            f"{ip_to_str(self.src_ip)}:{self.src_port}->"
            f"{ip_to_str(self.dst_ip)}:{self.dst_port}/{self.proto}"
        )


@dataclass
class Packet:
    """One packet in flight.

    ``pid`` is a globally unique sequence number assigned by the traffic
    source; it is the simulator's ground-truth identity and is *not*
    available to the compressed collector, which must re-identify packets by
    (IPID, side channels).
    """

    pid: int
    flow: FiveTuple
    ipid: int
    size_bytes: int = 64
    created_ns: int = 0
    #: Nodes visited so far, appended by the simulator (ground truth only).
    path: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0 <= self.ipid <= _MAX_IPID:
            raise ValueError(f"ipid out of range: {self.ipid}")
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive: {self.size_bytes}")

    def visited(self, node: str) -> None:
        """Record that this packet traversed ``node`` (ground truth)."""
        self.path = self.path + (node,)
