"""Trace sources for the diagnosis service.

The service consumes a :class:`TelemetrySource` — the seam between "where
telemetry comes from" and "how chunks get diagnosed":

* :class:`FixedTraceSource` wraps a fully materialized
  :class:`~repro.core.records.DiagTrace` (the replay/backfill path, and
  the only mode PR 4 had).  Every chunk is sealed up front.
* :class:`LiveTraceSource` drives a
  :class:`~repro.ingest.feed.TelemetryFeed` +
  :class:`~repro.ingest.incremental.IncrementalTrace` pair: each ``pump``
  pulls records from the transport and grows the trace, and chunks become
  diagnosable as they clear the sealing barrier.

Helpers here also produce traces from the collector's persisted record
streams (:func:`repro.collector.persistence.load_collected` ->
:class:`~repro.collector.reconstruct.TraceReconstructor` ->
:meth:`~repro.core.records.DiagTrace.from_reconstruction`), which is the
batch deployment path: collectors persist, the service tails.

Also home to :func:`trace_fingerprint`, the cheap trace identity stamped
into every checkpoint so a resume against different data is refused
instead of silently producing a chimera of two runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.collector.persistence import load_collected
from repro.collector.reconstruct import (
    DEFAULT_MAX_WAIT_NS,
    EdgeSpec,
    TraceReconstructor,
)
from repro.core.records import DiagTrace
from repro.errors import IngestError
from repro.ingest.feed import TelemetryFeed
from repro.ingest.incremental import IncrementalTrace


def trace_fingerprint(trace: DiagTrace) -> dict:
    """Cheap deterministic identity of a trace (pure JSON).

    Enough to refuse cross-trace resumes: packet count, the NF name set,
    and the total per-NF event count.  Deliberately not a full content
    hash — fingerprinting must stay O(#NFs), not O(#events)."""
    events = sum(
        len(view.arrivals) + len(view.reads) + len(view.departs) + len(view.drops)
        for view in trace.nfs.values()
    )
    return {
        "packets": len(trace.packets),
        "nfs": sorted(trace.nfs),
        "events": events,
    }


class FixedTraceSource:
    """A fully materialized trace: everything is already sealed.

    The TelemetrySource contract (duck-typed; both implementations and
    the service agree on it):

    ``trace``          the growing-or-fixed DiagTrace to diagnose
    ``live``           False = chunk count is known up front
    ``pump()``         advance ingestion; returns True on progress
    ``sealed_through()``  chunks [0, n) safe to diagnose right now
    ``exhausted()``    no further records will ever arrive
    ``final_chunks()`` total chunk count (only valid once exhausted)
    ``sheds_for_chunk(i)``  overload sheds whose timestamps fall in chunk i
    ``ingest_stats()`` pure-int/float ingestion counters
    ``fingerprint()``  restart-stable identity for checkpoint validation
    ``supports_snapshot()``  bounded-replay snapshots available
    ``snapshot_state()``  JSON ingest state at the current boundary (or None)
    ``restore_state(s)``  restore a snapshot into this fresh source
    ``prune_before(cut)``  evict state no future chunk's diagnosis can touch
    """

    live = False

    def __init__(self, trace: DiagTrace, chunk_ns: int) -> None:
        self.trace = trace
        self.chunk_ns = chunk_ns

    def pump(self) -> bool:
        return False

    def supports_snapshot(self) -> bool:
        return False  # the whole trace is already here; nothing to replay

    def snapshot_state(self) -> Optional[dict]:
        return None

    def restore_state(self, state: dict) -> None:
        raise IngestError("fixed traces do not restore ingest snapshots")

    def prune_before(self, cut_ns: int) -> Dict[str, int]:
        return {"cut_ns": 0, "packets": 0, "gaps": 0}

    def sealed_through(self) -> int:
        return self.final_chunks()

    def exhausted(self) -> bool:
        return True

    def final_chunks(self) -> int:
        latest = 0
        for view in self.trace.nfs.values():
            if view.departs:
                latest = max(latest, view.departs[-1][0])
        return latest // self.chunk_ns + 1

    def sheds_for_chunk(self, index: int) -> Tuple:
        return ()

    def ingest_stats(self) -> Dict[str, int]:
        return {}

    def fingerprint(self) -> dict:
        return trace_fingerprint(self.trace)


class LiveTraceSource:
    """Feed-driven source: the trace grows as the transport delivers.

    ``max_idle_pumps`` bounds how many consecutive pump rounds may make
    no progress (no records arriving, nothing applied, nothing newly
    sealed) before the source declares the transport wedged and raises
    :class:`~repro.errors.IngestError` — a liveness backstop so a silent
    transport cannot spin the service forever.  Streams that merely lag
    are the straggler timeout's job, not this one.

    The fingerprint deliberately excludes record counts: a restarted
    service re-ingests from the transport's beginning, so identity must
    be stable across restart (topology shape, not progress).
    """

    live = True

    def __init__(
        self,
        feed: TelemetryFeed,
        builder: IncrementalTrace,
        max_idle_pumps: int = 10_000,
    ) -> None:
        self.feed = feed
        self.builder = builder
        self.max_idle_pumps = max_idle_pumps
        self._idle_pumps = 0
        self._sheds: List[Tuple[str, int, int, str]] = []

    @property
    def trace(self) -> IncrementalTrace:
        return self.builder

    @property
    def chunk_ns(self) -> int:
        return self.builder.config.chunk_ns

    def pump(self) -> bool:
        sealed_before = self.builder.sealed_chunks()
        pulled = self.feed.pump()
        applied = self.builder.ingest(self.feed)
        self._sheds.extend(self.feed.take_sheds())
        progress = bool(
            pulled or applied or self.builder.sealed_chunks() > sealed_before
        )
        if progress or self.exhausted():
            self._idle_pumps = 0
        else:
            self._idle_pumps += 1
            if self._idle_pumps > self.max_idle_pumps:
                raise IngestError(
                    f"no ingestion progress in {self._idle_pumps} pump "
                    f"rounds; transport appears wedged"
                )
        return progress

    def sealed_through(self) -> int:
        return self.builder.sealed_chunks()

    def exhausted(self) -> bool:
        return self.builder.complete

    def final_chunks(self) -> int:
        if not self.builder.complete:
            raise IngestError("final_chunks() before the source is exhausted")
        return self.builder.n_chunks()

    def sheds_for_chunk(self, index: int) -> Tuple[Tuple[str, int, int, str], ...]:
        chunk_ns = self.chunk_ns
        return tuple(
            sorted(
                shed
                for shed in self._sheds
                if shed[2] // chunk_ns == index
            )
        )

    def ingest_stats(self) -> Dict[str, int]:
        stats = dict(self.builder.ingest_stats())
        feed = self.feed.stats
        stats.update(
            {
                "records_pulled": feed.records,
                "transport_failures": feed.transport_failures,
                "disconnects": feed.disconnects,
                "retries": feed.retries,
                "reconnects": feed.reconnects,
                "sheds": feed.sheds,
                "peak_buffered": feed.peak_buffered,
            }
        )
        return stats

    def fingerprint(self) -> dict:
        clock = self.builder.config.clock
        return {
            "live": True,
            "nfs": sorted(self.builder.nfs),
            "sources": sorted(self.builder.sources),
            # Clock repair changes applied timestamps, so a journal
            # written with models on must not be resumed with them off
            # (or under different model parameters) and vice versa.
            "clock": None if clock is None else clock.to_payload(),
        }

    # -- bounded replay ---------------------------------------------------------

    def supports_snapshot(self) -> bool:
        """True when the transport can report and restore its position."""
        from repro.ingest.watermark import capture_transport_state

        return capture_transport_state(self.feed.transport) is not None

    def snapshot_state(self) -> Optional[dict]:
        """Complete ingest-side state at the current chunk boundary."""
        from repro.ingest.watermark import capture_source_state

        return capture_source_state(self)

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot into this freshly constructed source."""
        from repro.ingest.watermark import restore_source_state

        restore_source_state(self, state)

    def prune_before(self, cut_ns: int) -> Dict[str, int]:
        """Evict builder state and shed accounting behind the cut.

        Only sheds strictly below the cut are dropped: every future
        ``sheds_for_chunk`` query targets chunks at or past the cut, so
        the journalled per-chunk shed lists are unchanged.
        """
        result = self.builder.prune_before(cut_ns)
        cut = result["cut_ns"]
        if cut > 0 and self._sheds:
            kept = [shed for shed in self._sheds if shed[2] >= cut]
            result["sheds"] = len(self._sheds) - len(kept)
            self._sheds = kept
        return result


def trace_from_collected(
    data,
    edges: Sequence[EdgeSpec],
    peak_rates: Dict[str, float],
    upstreams: Dict[str, Set[str]],
    sources: Set[str],
    nf_types: Optional[Dict[str, str]] = None,
    tolerant: bool = False,
    max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
) -> DiagTrace:
    """Reconstruct a diagnosable trace from in-memory collected records."""
    reconstructor = TraceReconstructor(
        data, edges, max_wait_ns=max_wait_ns, tolerant=tolerant
    )
    packets = reconstructor.reconstruct()
    return DiagTrace.from_reconstruction(
        packets,
        peak_rates=peak_rates,
        upstreams=upstreams,
        sources=sources,
        nf_types=nf_types,
        health=reconstructor.health if tolerant else None,
        tolerant=tolerant,
    )


def trace_from_directory(
    directory: Union[str, Path],
    edges: Sequence[EdgeSpec],
    peak_rates: Dict[str, float],
    upstreams: Dict[str, Set[str]],
    sources: Set[str],
    nf_types: Optional[Dict[str, str]] = None,
    tolerant: bool = False,
    max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
) -> DiagTrace:
    """Load persisted record streams (CRC-verified) and reconstruct."""
    data = load_collected(directory)
    return trace_from_collected(
        data,
        edges,
        peak_rates=peak_rates,
        upstreams=upstreams,
        sources=sources,
        nf_types=nf_types,
        tolerant=tolerant,
        max_wait_ns=max_wait_ns,
    )
