"""Trace sources for the diagnosis service.

The service diagnoses a :class:`~repro.core.records.DiagTrace`; these
helpers produce one from the collector's persisted record streams
(:func:`repro.collector.persistence.load_collected` ->
:class:`~repro.collector.reconstruct.TraceReconstructor` ->
:meth:`~repro.core.records.DiagTrace.from_reconstruction`), which is the
always-on deployment path: collectors persist, the service tails.

Also home to :func:`trace_fingerprint`, the cheap trace identity stamped
into every checkpoint so a resume against different data is refused
instead of silently producing a chimera of two runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Set, Union

from repro.collector.persistence import load_collected
from repro.collector.reconstruct import (
    DEFAULT_MAX_WAIT_NS,
    EdgeSpec,
    TraceReconstructor,
)
from repro.core.records import DiagTrace


def trace_fingerprint(trace: DiagTrace) -> dict:
    """Cheap deterministic identity of a trace (pure JSON).

    Enough to refuse cross-trace resumes: packet count, the NF name set,
    and the total per-NF event count.  Deliberately not a full content
    hash — fingerprinting must stay O(#NFs), not O(#events)."""
    events = sum(
        len(view.arrivals) + len(view.reads) + len(view.departs) + len(view.drops)
        for view in trace.nfs.values()
    )
    return {
        "packets": len(trace.packets),
        "nfs": sorted(trace.nfs),
        "events": events,
    }


def trace_from_collected(
    data,
    edges: Sequence[EdgeSpec],
    peak_rates: Dict[str, float],
    upstreams: Dict[str, Set[str]],
    sources: Set[str],
    nf_types: Optional[Dict[str, str]] = None,
    tolerant: bool = False,
    max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
) -> DiagTrace:
    """Reconstruct a diagnosable trace from in-memory collected records."""
    reconstructor = TraceReconstructor(
        data, edges, max_wait_ns=max_wait_ns, tolerant=tolerant
    )
    packets = reconstructor.reconstruct()
    return DiagTrace.from_reconstruction(
        packets,
        peak_rates=peak_rates,
        upstreams=upstreams,
        sources=sources,
        nf_types=nf_types,
        health=reconstructor.health if tolerant else None,
        tolerant=tolerant,
    )


def trace_from_directory(
    directory: Union[str, Path],
    edges: Sequence[EdgeSpec],
    peak_rates: Dict[str, float],
    upstreams: Dict[str, Set[str]],
    sources: Set[str],
    nf_types: Optional[Dict[str, str]] = None,
    tolerant: bool = False,
    max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
) -> DiagTrace:
    """Load persisted record streams (CRC-verified) and reconstruct."""
    data = load_collected(directory)
    return trace_from_collected(
        data,
        edges,
        peak_rates=peak_rates,
        upstreams=upstreams,
        sources=sources,
        nf_types=nf_types,
        tolerant=tolerant,
        max_wait_ns=max_wait_ns,
    )
