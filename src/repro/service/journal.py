"""Append-only results journal: the service's durable diagnosis output.

One JSON line per diagnosed chunk, each line carrying a CRC32 of its body.
The journal is the write-ahead half of the crash-only protocol:

1. append the chunk's results, flush, fsync — the *journal* is now ahead,
2. commit a checkpoint recording the journal byte offset after the append.

A crash between (1) and (2) leaves a tail the last checkpoint does not
cover; recovery truncates the journal back to the checkpointed offset and
re-runs the chunk, which re-appends byte-identical lines (diagnosis is
deterministic).  A torn append — half a line — lands in that same
discarded tail, so line-level CRCs only ever fire on real corruption
*behind* a checkpoint, which is unrecoverable data damage and raises
:class:`~repro.errors.ServiceError` naming the file and line.

Victims and diagnoses ride the engine's compact wire format
(:func:`repro.core.diagnosis.diagnosis_to_wire`), tuple->list converted
for JSON and converted back on read, so journalled results reconstruct to
field-exact :class:`~repro.core.diagnosis.VictimDiagnosis` objects.

**Bounded disk (segment rotation + compaction).**  A week-long run cannot
append to one file forever.  With ``rotate_bytes`` set, the active file
(``journal.jsonl``) is sealed once it reaches the threshold: it is
renamed into ``journal.d/seg-%08d.jsonl`` and a sidecar
``seg-%08d.meta.json`` records its byte count, CRC32 and *chain* CRC
(each segment's CRC folded over its predecessor's chain, rooted at the
compaction header), then a fresh active file starts.  Offsets handed to
callers are **logical** — byte positions in the virtual concatenation of
every segment plus the active file — so checkpoints, tally digests and
truncation work unchanged across rotation, and ``read_bytes()`` returns
the identical bytes a never-rotated journal holds.

Sidecar metas are *pure caches* of derived data: a crash between the
rename and the meta write simply leaves a segment whose meta is
recomputed from its bytes on the next open.  Nothing in the rotation path
ever rewrites record bytes, so it inherits the append path's crash
story for free.

``compact()`` bounds total disk: sealed segments wholly behind a caller-
supplied floor (the oldest offset any retained checkpoint still needs)
are *folded* — their chunk records are replayed into a running tally
whose payload is stored in ``journal.d/COMPACT.json`` together with the
new retained-from offset and the chain CRC at the fold point — and then
deleted.  ``tally_from_journal`` seeds from that header and replays the
retained suffix, so offline recomputation still reproduces the service's
exact aggregation state; only the per-chunk diagnosis records behind the
floor are gone, which is precisely the data bounded disk must give up.
A crash after the header commits but before the unlinks leaves orphan
segments below the retained floor; they are swept on the next open.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.diagnosis import (
    VictimDiagnosis,
    diagnosis_from_wire,
    diagnosis_to_wire,
)
from repro.core.victims import Victim
from repro.errors import ServiceError, StorageError
from repro.util.atomicio import atomic_write_bytes, fsync_dir


def victim_to_wire(victim: Victim) -> Tuple[int, str, str, int, float]:
    return (victim.pid, victim.nf, victim.kind, victim.arrival_ns, victim.metric)


def victim_from_wire(wire) -> Victim:
    pid, nf, kind, arrival_ns, metric = wire
    return Victim(
        pid=int(pid),
        nf=nf,
        kind=kind,
        arrival_ns=int(arrival_ns),
        metric=float(metric),
    )


def _jsonify(obj):
    """Wire tuples -> JSON lists (the codec is tuples/str/int/float/None)."""
    if isinstance(obj, tuple):
        return [_jsonify(item) for item in obj]
    return obj


def _tupleize(obj):
    """Inverse of :func:`_jsonify` — JSON lists back to wire tuples."""
    if isinstance(obj, list):
        return tuple(_tupleize(item) for item in obj)
    return obj


def chunk_record(
    result,
    shed_pids: Tuple[int, ...] = (),
    ingest_sheds: Tuple = (),
    ingest_evictions: int = 0,
) -> dict:
    """JSON body for one :class:`~repro.core.streaming.ChunkResult`.

    ``ingest_sheds`` lists telemetry records the live feed shed under
    overload whose timestamps fall in this chunk, as
    ``(stream, seq, time_ns, kind)`` tuples.  ``ingest_evictions`` is the
    *cumulative* count of builder state evicted by watermark pruning as
    of this chunk's boundary (cumulative, not per-chunk: increments are
    path-dependent across restarts, totals are not).  Both keys are
    present only when non-zero, so clean journals stay byte-identical to
    ones from services without the features enabled.
    """
    body = {
        "start_ns": result.start_ns,
        "end_ns": result.end_ns,
        "victims": [_jsonify(victim_to_wire(v)) for v in result.victims],
        "diagnoses": [_jsonify(diagnosis_to_wire(d)) for d in result.diagnoses],
        "shed_pids": list(shed_pids),
        "margin_exceeded": result.margin_exceeded,
        "telemetry_completeness": result.telemetry_completeness,
        "quarantined_nfs": list(result.quarantined_nfs),
        "low_evidence_culprits": result.low_evidence_culprits,
    }
    if ingest_sheds:
        body["ingest_sheds"] = [list(shed) for shed in ingest_sheds]
    if ingest_evictions:
        body["ingest_evictions"] = ingest_evictions
    return body


def tally_record(tally) -> dict:
    """JSON body of a rolling-tally snapshot (checkpoint size bounding).

    Snapshot records interleave with chunk records in the journal;
    ``kind`` distinguishes them (chunk bodies have no ``kind`` key), and
    readers that want diagnoses skip them.
    """
    return {"kind": "tally", "tally": tally.to_payload()}


def dead_letter_record(
    cause: str,
    attempts: int,
    start_ns: int,
    end_ns: int,
    victims: Tuple[Victim, ...] = (),
) -> dict:
    """JSON body for a chunk abandoned after exhausting its retries.

    The dead letter takes the chunk's slot in the journal so the record
    stream stays dense and recovery stays byte-identical: re-running the
    chunk after a crash deterministically fails the same way and re-
    appends the same record.  ``victims`` preserves what the chunk would
    have diagnosed, for post-mortem triage.
    """
    return {
        "kind": "chunk_failed",
        "cause": cause,
        "attempts": attempts,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "victims": [_jsonify(victim_to_wire(v)) for v in victims],
    }


def decode_diagnoses(body: dict) -> List[VictimDiagnosis]:
    """Rebuild the chunk's diagnoses from a journalled body."""
    victims = [victim_from_wire(_tupleize(w)) for w in body["victims"]]
    diagnosed = []
    wires = [_tupleize(w) for w in body["diagnoses"]]
    # diagnose order == victim order within a chunk (diagnose_all contract);
    # shed victims never reach the diagnosis list, so pair by position among
    # the non-shed prefix the service actually diagnosed.
    for victim, wire in zip(victims, wires):
        diagnosed.append(diagnosis_from_wire(victim, wire))
    return diagnosed


def _write_all(handle, data: bytes) -> None:
    """Single append-path write seam for ENOSPC fault injection.

    Monkeypatching this to raise :class:`OSError` models a full disk mid-
    append; :meth:`ResultJournal.append` then truncates the active file
    back to its pre-append offset and raises
    :class:`~repro.errors.StorageError`, leaving the journal exactly as
    the last committed checkpoint describes it.
    """
    handle.write(data)


_SEG_STEM = "seg-"
_COMPACT_NAME = "COMPACT.json"


@dataclass(frozen=True)
class _Segment:
    """One sealed, immutable journal segment (derived meta included)."""

    index: int
    path: Path
    base_offset: int  # logical offset of the segment's first byte
    nbytes: int
    crc32: int
    chain: int  # crc32 of the bytes folded over the previous chain


class ResultJournal:
    """CRC-guarded append-only JSONL store with offset-based truncation.

    Physically one active file plus optional sealed segments under
    ``<path stem>.d/`` (see the module docstring); logically a single
    byte stream — every offset in the public API is a position in that
    stream.  A journal that never rotates is a plain single file,
    byte-identical to earlier versions of this class.
    """

    def __init__(self, path: Union[str, Path], durable: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.segment_dir = self.path.with_suffix(".d")
        self._segments: List[_Segment] = []
        self._compact: Optional[dict] = None
        self._retained_from = 0
        self._active_base = 0
        self._load_layout()

    # -- layout -----------------------------------------------------------------

    def _meta_path(self, index: int) -> Path:
        return self.segment_dir / f"{_SEG_STEM}{index:08d}.meta.json"

    def _load_layout(self) -> None:
        """Scan the segment directory: heal missing/stale metas, sweep
        orphans below the compaction floor, compute the active base."""
        if not self.segment_dir.is_dir():
            return
        first_index = 1
        chain = 0
        compact_path = self.segment_dir / _COMPACT_NAME
        if compact_path.exists():
            try:
                self._compact = json.loads(compact_path.read_bytes())
            except ValueError as exc:
                raise ServiceError(
                    f"corrupt compaction header {compact_path}: {exc}"
                ) from exc
            self._retained_from = int(self._compact["retained_from"])
            first_index = int(self._compact["retained_index"])
            chain = int(self._compact["chain"])
        base = self._retained_from
        expected = first_index
        for seg_path in sorted(self.segment_dir.glob(f"{_SEG_STEM}*.jsonl")):
            index = int(seg_path.stem.split("-", 1)[1])
            if index < first_index:
                # Orphan below the compaction floor: the fold's header
                # committed but the crash beat the unlinks.  Finish the job.
                seg_path.unlink()
                meta = self._meta_path(index)
                if meta.exists():
                    meta.unlink()
                continue
            if index != expected:
                raise ServiceError(
                    f"journal segment gap in {self.segment_dir}: expected "
                    f"{_SEG_STEM}{expected:08d}, found {seg_path.name}"
                )
            seg = self._load_segment(index, seg_path, base, chain)
            self._segments.append(seg)
            base = seg.base_offset + seg.nbytes
            chain = seg.chain
            expected = index + 1
        self._active_base = base

    def _load_segment(
        self, index: int, seg_path: Path, base: int, prev_chain: int
    ) -> _Segment:
        nbytes = seg_path.stat().st_size
        meta_path = self._meta_path(index)
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_bytes())
            except ValueError:
                meta = None  # torn meta: a derived cache, recompute below
            if (
                meta is not None
                and meta.get("nbytes") == nbytes
                and isinstance(meta.get("crc32"), int)
                and isinstance(meta.get("chain"), int)
            ):
                return _Segment(
                    index, seg_path, base, nbytes, meta["crc32"], meta["chain"]
                )
        return self._seal_meta(index, seg_path, base, prev_chain)

    def _seal_meta(
        self, index: int, seg_path: Path, base: int, prev_chain: int
    ) -> _Segment:
        """(Re)derive and persist a segment's meta from its bytes."""
        data = seg_path.read_bytes()
        crc = zlib.crc32(data)
        chain = zlib.crc32(data, prev_chain)
        meta = {
            "version": 1,
            "index": index,
            "base_offset": base,
            "nbytes": len(data),
            "crc32": crc,
            "chain": chain,
        }
        blob = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        try:
            atomic_write_bytes(
                self._meta_path(index), blob.encode("utf-8"),
                durable=self.durable,
            )
        except OSError as exc:
            raise StorageError(
                f"journal meta write for segment {index} failed: {exc}"
            ) from exc
        return _Segment(index, seg_path, base, len(data), crc, chain)

    # -- geometry ---------------------------------------------------------------

    def _active_size(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def size(self) -> int:
        """Logical end offset: sealed segments plus the active file."""
        return self._active_base + self._active_size()

    @property
    def retained_from(self) -> int:
        """Oldest logical offset still on disk (0 unless compacted)."""
        return self._retained_from

    def segments(self) -> List[dict]:
        """Sealed-segment inventory (health reporting, chain audits)."""
        return [
            {
                "index": seg.index,
                "base_offset": seg.base_offset,
                "nbytes": seg.nbytes,
                "crc32": seg.crc32,
                "chain": seg.chain,
            }
            for seg in self._segments
        ]

    def compaction_info(self) -> Optional[dict]:
        """The compaction header minus its tally payload, or None."""
        if self._compact is None:
            return None
        return {
            key: self._compact[key]
            for key in (
                "retained_from",
                "retained_index",
                "chain",
                "segments_folded",
                "chunks_folded",
                "bytes_folded",
            )
        }

    def compacted_tally_payload(self) -> Optional[dict]:
        """Tally payload folded by compaction (seed for offline replay)."""
        return None if self._compact is None else self._compact["tally"]

    def dir_bytes(self) -> int:
        """Actual bytes on disk across every journal artifact."""
        total = self._active_size()
        if self.segment_dir.is_dir():
            for entry in self.segment_dir.iterdir():
                try:
                    total += entry.stat().st_size
                except FileNotFoundError:
                    pass
        return total

    def verify_chain(self) -> int:
        """Recompute every sealed segment's CRC chain from its bytes.

        Returns the number of segments verified; raises
        :class:`~repro.errors.ServiceError` on any divergence between
        bytes and recorded metas (real corruption, not a crash artifact).
        """
        chain = 0 if self._compact is None else int(self._compact["chain"])
        for seg in self._segments:
            data = seg.path.read_bytes()
            crc = zlib.crc32(data)
            chain = zlib.crc32(data, chain)
            if len(data) != seg.nbytes or crc != seg.crc32 or chain != seg.chain:
                raise ServiceError(
                    f"journal segment {seg.path} fails chain verification"
                )
        return len(self._segments)

    def truncate_to(self, offset: int) -> int:
        """Discard everything past logical ``offset``; returns bytes discarded.

        ``offset`` beyond the current size means the journal lost data the
        checkpoint relies on — the caller must fall down the recovery
        ladder, so this raises rather than papering over it.  ``offset``
        below the compaction floor is equally unrecoverable: those bytes
        were folded away, which the compaction floor (derived from the
        same checkpoint ladder) exists to prevent.

        Truncating into a sealed segment *unseals* it: later segments and
        the active file are dropped and the containing segment becomes the
        active file again, so recovery after a crash-at-rotation resumes
        appending exactly where the checkpoint says.
        """
        size = self.size()
        if offset > size:
            raise ServiceError(
                f"journal {self.path} is {size} bytes but the checkpoint "
                f"requires {offset}: journal data was lost"
            )
        if offset < self._retained_from:
            raise ServiceError(
                f"journal offset {offset} in {self.path} was compacted away "
                f"(retained from {self._retained_from})"
            )
        if offset == size:
            return 0
        if offset >= self._active_base:
            with open(self.path, "r+b") as handle:
                handle.truncate(offset - self._active_base)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            return size - offset
        discarded = size - offset
        keep: List[_Segment] = []
        reopen: Optional[_Segment] = None
        for seg in self._segments:
            if seg.base_offset + seg.nbytes <= offset:
                keep.append(seg)
            elif reopen is None and seg.base_offset <= offset:
                reopen = seg
            else:
                seg.path.unlink()
                meta = self._meta_path(seg.index)
                if meta.exists():
                    meta.unlink()
        if self.path.exists():
            self.path.unlink()
        if reopen is not None:
            meta = self._meta_path(reopen.index)
            if meta.exists():
                meta.unlink()
            os.replace(reopen.path, self.path)
            with open(self.path, "r+b") as handle:
                handle.truncate(offset - reopen.base_offset)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            self._active_base = reopen.base_offset
        else:
            self._active_base = offset
        self._segments = keep
        if self.durable:
            fsync_dir(self.segment_dir)
            fsync_dir(self.path.parent)
        return discarded

    # -- writing ----------------------------------------------------------------

    @staticmethod
    def _encode_line(chunk_index: int, body: dict) -> bytes:
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(blob.encode("utf-8"))
        line = json.dumps(
            {"chunk": chunk_index, "crc32": crc, "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        return line.encode("utf-8") + b"\n"

    def append(
        self, chunk_index: int, body: dict, faults=None
    ) -> int:
        """Append one chunk record; returns the logical offset after it.

        The append is flushed and fsynced before returning, so a
        subsequently-committed checkpoint never points past durable data.
        ``faults`` may tear the write (crash simulation): the partial line
        is written and the injector raises, modelling a power cut.  A
        storage failure (ENOSPC, short write) rolls the active file back
        to its pre-append offset and raises
        :class:`~repro.errors.StorageError` — the journal still matches
        the last committed checkpoint exactly.
        """
        data = self._encode_line(chunk_index, body)
        torn = None
        if faults is not None:
            torn = faults.torn_bytes("mid-journal", chunk_index, data)
        pre = self._active_size()
        try:
            with open(self.path, "ab") as handle:
                _write_all(handle, data if torn is None else torn[0])
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
                offset = self._active_base + handle.tell()
        except OSError as exc:
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(pre)
                    handle.flush()
                    if self.durable:
                        os.fsync(handle.fileno())
            except OSError:
                pass  # nothing written past ``pre`` to roll back
            raise StorageError(
                f"journal append to {self.path} failed ({exc}); rolled back "
                f"to offset {self._active_base + pre}"
            ) from exc
        if torn is not None:
            raise torn[1]
        return offset

    # -- rotation & compaction --------------------------------------------------

    def maybe_rotate(
        self, rotate_bytes: int, faults=None, chunk_index: int = -1
    ) -> bool:
        """Seal the active file into a segment once it reaches
        ``rotate_bytes`` (0 disables).  Returns True when rotated."""
        if rotate_bytes <= 0 or self._active_size() < rotate_bytes:
            return False
        self.rotate(faults=faults, chunk_index=chunk_index)
        return True

    def rotate(self, faults=None, chunk_index: int = -1) -> None:
        """Seal the current active file as the next numbered segment.

        Rename-first: the record bytes move atomically, then the derived
        meta is written.  A crash between the two leaves a segment whose
        meta is healed from its bytes on the next open — no state in this
        path can require repair.
        """
        if self._active_size() == 0:
            return
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        if self._segments:
            index = self._segments[-1].index + 1
            prev_chain = self._segments[-1].chain
        elif self._compact is not None:
            index = int(self._compact["retained_index"])
            prev_chain = int(self._compact["chain"])
        else:
            index = 1
            prev_chain = 0
        if faults is not None:
            faults.kill("journal-rotate", chunk_index)
        seg_path = self.segment_dir / f"{_SEG_STEM}{index:08d}.jsonl"
        os.replace(self.path, seg_path)
        if self.durable:
            fsync_dir(self.segment_dir)
            fsync_dir(self.path.parent)
        seg = self._seal_meta(index, seg_path, self._active_base, prev_chain)
        self._segments.append(seg)
        self._active_base += seg.nbytes
        if faults is not None:
            faults.kill("after-rotate", chunk_index)

    def compact(
        self, floor: int, seed_tally=None, faults=None, chunk_index: int = -1
    ) -> int:
        """Fold sealed segments wholly below logical ``floor`` into the
        compaction header, then delete them; returns bytes reclaimed.

        ``floor`` must not exceed any offset recovery can still ask for —
        the service derives it from the oldest offset across its retained
        checkpoint generations (journal offset and tally-snapshot offset
        alike).  The fold replays the candidates' chunk records into a
        tally seeded from the previous header (or ``seed_tally`` — an
        empty tally of the class the service aggregates with — on the
        first fold), so offline recomputation via ``tally_from_journal``
        keeps producing the exact running aggregate.

        Commit point is the atomic header replace: a crash before it
        changes nothing, a crash after it leaves orphan segments that the
        next open sweeps.
        """
        candidates = [
            seg
            for seg in self._segments
            if seg.base_offset + seg.nbytes <= floor
        ]
        if not candidates:
            return 0
        # local import: repro.aggregation must stay importable without
        # the service layer, so the dependency points this way only.
        from repro.aggregation.sketches import tally_from_payload

        if self._compact is not None:
            tally = tally_from_payload(self._compact["tally"])
            segments_folded = int(self._compact["segments_folded"])
            chunks_folded = int(self._compact["chunks_folded"])
            bytes_folded = int(self._compact["bytes_folded"])
        else:
            if seed_tally is None:
                from repro.aggregation.tallies import CulpritTally

                seed_tally = CulpritTally()
            tally = seed_tally
            segments_folded = chunks_folded = bytes_folded = 0
        for seg in candidates:
            for _chunk, body in self._segment_records(seg, 0):
                if "kind" in body:
                    continue  # tally snapshots / dead letters: not folded
                tally.update(decode_diagnoses(body))
                chunks_folded += 1
        last = candidates[-1]
        header = {
            "version": 1,
            "retained_from": last.base_offset + last.nbytes,
            "retained_index": last.index + 1,
            "chain": last.chain,
            "tally": tally.to_payload(),
            "segments_folded": segments_folded + len(candidates),
            "chunks_folded": chunks_folded,
            "bytes_folded": bytes_folded + sum(s.nbytes for s in candidates),
        }
        blob = json.dumps(header, sort_keys=True, separators=(",", ":"))
        if faults is not None:
            faults.kill("journal-compact", chunk_index)
        tear = None
        if faults is not None:
            tear = lambda data: faults.torn_bytes(
                "mid-compact", chunk_index, data
            )
        try:
            atomic_write_bytes(
                self.segment_dir / _COMPACT_NAME,
                blob.encode("utf-8"),
                durable=self.durable,
                tear=tear,
            )
        except OSError as exc:
            raise StorageError(
                f"journal compaction header write failed: {exc}"
            ) from exc
        self._compact = header
        self._retained_from = header["retained_from"]
        if faults is not None:
            faults.kill("after-compact", chunk_index)
        reclaimed = 0
        for seg in candidates:
            reclaimed += seg.nbytes
            seg.path.unlink()
            meta = self._meta_path(seg.index)
            if meta.exists():
                meta.unlink()
        self._segments = self._segments[len(candidates):]
        if self.durable:
            fsync_dir(self.segment_dir)
        return reclaimed

    # -- reading ----------------------------------------------------------------

    @staticmethod
    def _decode_line(raw: bytes, where: str) -> Tuple[int, dict]:
        try:
            record = json.loads(raw)
            body = record["body"]
            crc = record["crc32"]
            chunk_index = record["chunk"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ServiceError(f"corrupt journal line {where}: {exc}") from exc
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(blob.encode("utf-8")) != crc:
            raise ServiceError(f"journal CRC mismatch at {where}")
        return chunk_index, body

    def _segment_records(
        self, seg: _Segment, local: int
    ) -> Iterator[Tuple[int, dict]]:
        with open(seg.path, "rb") as handle:
            if local:
                handle.seek(local)
            for lineno, raw in enumerate(handle, 1):
                yield self._decode_line(
                    raw, f"{seg.path}:{lineno}(+{local}B)"
                )

    def records(
        self, start_offset: Optional[int] = None
    ) -> Iterator[Tuple[int, dict]]:
        """Yield (chunk_index, body) pairs, CRC-verified.

        ``start_offset`` must be a line boundary (a previously returned
        append/record offset); reading resumes there, which is how the
        tally digest replays only the records after its last snapshot.
        None starts at the oldest retained offset; an explicit offset
        below the compaction floor raises — those records are gone and
        silently skipping them would misreport history.
        """
        if start_offset is None:
            start_offset = self._retained_from
        elif start_offset < self._retained_from:
            raise ServiceError(
                f"journal offset {start_offset} in {self.path} was "
                f"compacted away (retained from {self._retained_from})"
            )
        for seg in self._segments:
            if seg.base_offset + seg.nbytes <= start_offset:
                continue
            yield from self._segment_records(
                seg, max(0, start_offset - seg.base_offset)
            )
        local = max(0, start_offset - self._active_base)
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            if local:
                handle.seek(local)
            for lineno, raw in enumerate(handle, 1):
                yield self._decode_line(
                    raw, f"{self.path}:{lineno}(+{local}B)"
                )

    def record_at(self, offset: int) -> Tuple[int, dict, int]:
        """The record starting at logical ``offset``: (chunk, body, next)."""
        if offset < self._retained_from:
            raise ServiceError(
                f"journal offset {offset} in {self.path} was compacted away "
                f"(retained from {self._retained_from})"
            )
        if offset >= self.size():
            raise ServiceError(
                f"journal {self.path} has no record at offset {offset}"
            )
        for seg in self._segments:
            if seg.base_offset <= offset < seg.base_offset + seg.nbytes:
                with open(seg.path, "rb") as handle:
                    handle.seek(offset - seg.base_offset)
                    raw = handle.readline()
                    chunk_index, body = self._decode_line(
                        raw, f"{seg.path}@{offset}B"
                    )
                    return chunk_index, body, seg.base_offset + handle.tell()
        with open(self.path, "rb") as handle:
            handle.seek(offset - self._active_base)
            raw = handle.readline()
            chunk_index, body = self._decode_line(raw, f"{self.path}@{offset}B")
            return chunk_index, body, self._active_base + handle.tell()

    def diagnoses(self) -> List[VictimDiagnosis]:
        """Every retained journalled diagnosis, in chunk order
        (tally snapshots and dead-letter records skipped)."""
        results: List[VictimDiagnosis] = []
        for _chunk, body in self.records():
            if "kind" in body:
                continue  # tally snapshot / dead letter, not a diagnosed chunk
            results.extend(decode_diagnoses(body))
        return results

    def read_bytes(self) -> bytes:
        """The retained logical byte stream: sealed segments + active file."""
        parts = [seg.path.read_bytes() for seg in self._segments]
        if self.path.exists():
            parts.append(self.path.read_bytes())
        return b"".join(parts)
