"""Append-only results journal: the service's durable diagnosis output.

One JSON line per diagnosed chunk, each line carrying a CRC32 of its body.
The journal is the write-ahead half of the crash-only protocol:

1. append the chunk's results, flush, fsync — the *journal* is now ahead,
2. commit a checkpoint recording the journal byte offset after the append.

A crash between (1) and (2) leaves a tail the last checkpoint does not
cover; recovery truncates the journal back to the checkpointed offset and
re-runs the chunk, which re-appends byte-identical lines (diagnosis is
deterministic).  A torn append — half a line — lands in that same
discarded tail, so line-level CRCs only ever fire on real corruption
*behind* a checkpoint, which is unrecoverable data damage and raises
:class:`~repro.errors.ServiceError` naming the file and line.

Victims and diagnoses ride the engine's compact wire format
(:func:`repro.core.diagnosis.diagnosis_to_wire`), tuple->list converted
for JSON and converted back on read, so journalled results reconstruct to
field-exact :class:`~repro.core.diagnosis.VictimDiagnosis` objects.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.core.diagnosis import (
    VictimDiagnosis,
    diagnosis_from_wire,
    diagnosis_to_wire,
)
from repro.core.victims import Victim
from repro.errors import ServiceError


def victim_to_wire(victim: Victim) -> Tuple[int, str, str, int, float]:
    return (victim.pid, victim.nf, victim.kind, victim.arrival_ns, victim.metric)


def victim_from_wire(wire) -> Victim:
    pid, nf, kind, arrival_ns, metric = wire
    return Victim(
        pid=int(pid),
        nf=nf,
        kind=kind,
        arrival_ns=int(arrival_ns),
        metric=float(metric),
    )


def _jsonify(obj):
    """Wire tuples -> JSON lists (the codec is tuples/str/int/float/None)."""
    if isinstance(obj, tuple):
        return [_jsonify(item) for item in obj]
    return obj


def _tupleize(obj):
    """Inverse of :func:`_jsonify` — JSON lists back to wire tuples."""
    if isinstance(obj, list):
        return tuple(_tupleize(item) for item in obj)
    return obj


def chunk_record(
    result, shed_pids: Tuple[int, ...] = (), ingest_sheds: Tuple = ()
) -> dict:
    """JSON body for one :class:`~repro.core.streaming.ChunkResult`.

    ``ingest_sheds`` lists telemetry records the live feed shed under
    overload whose timestamps fall in this chunk, as
    ``(stream, seq, time_ns, kind)`` tuples.  The key is present only
    when non-empty, so clean-transport live journals stay byte-identical
    to offline ones.
    """
    body = {
        "start_ns": result.start_ns,
        "end_ns": result.end_ns,
        "victims": [_jsonify(victim_to_wire(v)) for v in result.victims],
        "diagnoses": [_jsonify(diagnosis_to_wire(d)) for d in result.diagnoses],
        "shed_pids": list(shed_pids),
        "margin_exceeded": result.margin_exceeded,
        "telemetry_completeness": result.telemetry_completeness,
        "quarantined_nfs": list(result.quarantined_nfs),
        "low_evidence_culprits": result.low_evidence_culprits,
    }
    if ingest_sheds:
        body["ingest_sheds"] = [list(shed) for shed in ingest_sheds]
    return body


def tally_record(tally) -> dict:
    """JSON body of a rolling-tally snapshot (checkpoint size bounding).

    Snapshot records interleave with chunk records in the journal;
    ``kind`` distinguishes them (chunk bodies have no ``kind`` key), and
    readers that want diagnoses skip them.
    """
    return {"kind": "tally", "tally": tally.to_payload()}


def decode_diagnoses(body: dict) -> List[VictimDiagnosis]:
    """Rebuild the chunk's diagnoses from a journalled body."""
    victims = [victim_from_wire(_tupleize(w)) for w in body["victims"]]
    diagnosed = []
    wires = [_tupleize(w) for w in body["diagnoses"]]
    # diagnose order == victim order within a chunk (diagnose_all contract);
    # shed victims never reach the diagnosis list, so pair by position among
    # the non-shed prefix the service actually diagnosed.
    for victim, wire in zip(victims, wires):
        diagnosed.append(diagnosis_from_wire(victim, wire))
    return diagnosed


class ResultJournal:
    """CRC-guarded append-only JSONL file with offset-based truncation."""

    def __init__(self, path: Union[str, Path], durable: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.durable = durable

    # -- geometry ---------------------------------------------------------------

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def truncate_to(self, offset: int) -> int:
        """Discard everything past ``offset``; returns bytes discarded.

        ``offset`` beyond the current size means the journal lost data the
        checkpoint relies on — the caller must fall down the recovery
        ladder, so this raises rather than papering over it.
        """
        size = self.size()
        if offset > size:
            raise ServiceError(
                f"journal {self.path} is {size} bytes but the checkpoint "
                f"requires {offset}: journal data was lost"
            )
        if offset == size:
            return 0
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        return size - offset

    # -- writing ----------------------------------------------------------------

    @staticmethod
    def _encode_line(chunk_index: int, body: dict) -> bytes:
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(blob.encode("utf-8"))
        line = json.dumps(
            {"chunk": chunk_index, "crc32": crc, "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        return line.encode("utf-8") + b"\n"

    def append(
        self, chunk_index: int, body: dict, faults=None
    ) -> int:
        """Append one chunk record; returns the byte offset after it.

        The append is flushed and fsynced before returning, so a
        subsequently-committed checkpoint never points past durable data.
        ``faults`` may tear the write (crash simulation): the partial line
        is written and the injector raises, modelling a power cut.
        """
        data = self._encode_line(chunk_index, body)
        torn = None
        if faults is not None:
            torn = faults.torn_bytes("mid-journal", chunk_index, data)
        with open(self.path, "ab") as handle:
            handle.write(data if torn is None else torn[0])
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
            offset = handle.tell()
        if torn is not None:
            raise torn[1]
        return offset

    # -- reading ----------------------------------------------------------------

    @staticmethod
    def _decode_line(raw: bytes, where: str) -> Tuple[int, dict]:
        try:
            record = json.loads(raw)
            body = record["body"]
            crc = record["crc32"]
            chunk_index = record["chunk"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ServiceError(f"corrupt journal line {where}: {exc}") from exc
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(blob.encode("utf-8")) != crc:
            raise ServiceError(f"journal CRC mismatch at {where}")
        return chunk_index, body

    def records(self, start_offset: int = 0) -> Iterator[Tuple[int, dict]]:
        """Yield (chunk_index, body) pairs, CRC-verified.

        ``start_offset`` must be a line boundary (a previously returned
        append/record offset); reading resumes there, which is how the
        tally digest replays only the records after its last snapshot.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            if start_offset:
                handle.seek(start_offset)
            for lineno, raw in enumerate(handle, 1):
                yield self._decode_line(
                    raw, f"{self.path}:{lineno}(+{start_offset}B)"
                )

    def record_at(self, offset: int) -> Tuple[int, dict, int]:
        """The record starting at byte ``offset``: (chunk, body, next offset)."""
        if offset >= self.size():
            raise ServiceError(
                f"journal {self.path} has no record at offset {offset}"
            )
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            raw = handle.readline()
            chunk_index, body = self._decode_line(raw, f"{self.path}@{offset}B")
            return chunk_index, body, handle.tell()

    def diagnoses(self) -> List[VictimDiagnosis]:
        """Every journalled diagnosis, in chunk order (snapshots skipped)."""
        results: List[VictimDiagnosis] = []
        for _chunk, body in self.records():
            if "kind" in body:
                continue  # tally snapshot, not a diagnosed chunk
            results.extend(decode_diagnoses(body))
        return results

    def read_bytes(self) -> bytes:
        return self.path.read_bytes() if self.path.exists() else b""
