"""Process-level chaos harness for the diagnosis service.

The service's crash-only claim — SIGKILL anywhere, restart, results are
bit-identical — is only as good as the crashes we can throw at it.  This
module injects three fault families at named *kill-points* threaded
through the service's per-chunk commit protocol:

``kill``
    Raise :class:`SimulatedCrash` at the kill-point, modelling SIGKILL /
    power loss between two durable operations.
``torn_bytes``
    Return a strict prefix of the bytes about to be written; the writer
    persists the prefix and then crashes, modelling a write torn by power
    loss mid-``write(2)``.
``corrupt_file``
    Flip bytes in an already-committed file and then crash, modelling
    latent media corruption of the newest checkpoint (the recovery ladder
    must fall back one generation).

:class:`SimulatedCrash` deliberately derives from :class:`BaseException`:
the service's transient-retry machinery catches ``Exception``, and a
simulated power cut must never be "handled" by a retry loop — it has to
unwind the whole process, exactly like the real thing.

Kill-points are deterministic: an injector is armed with one
``(point, chunk)`` pair (plus a fault family) and fires exactly once.
The soak harness in :mod:`benchmarks.test_crash_soak` draws arming pairs
from a seeded RNG, so a failing run is reproducible from its seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ServiceError

#: Every kill-point the service threads through its per-chunk protocol,
#: in the order they are reached within one chunk.
KILL_POINTS: Tuple[str, ...] = (
    "chunk-start",  # before diagnosis: nothing durable has happened
    "after-diagnose",  # results computed but nothing written
    "mid-journal",  # torn write inside the journal append
    "after-journal",  # journal fsynced, checkpoint not yet written
    "mid-checkpoint",  # torn write inside the checkpoint temp file
    "after-checkpoint-file",  # generation file committed, manifest not
    "corrupt-checkpoint",  # checkpoint fully committed, then corrupted
    "after-checkpoint",  # chunk fully committed
)

#: Kill-points inside the live ingestion loop, kept separate from
#: KILL_POINTS: an offline (fixed-trace) run never passes through them,
#: and coverage asserts over the per-chunk protocol must not expect them.
#: Their ``chunk`` coordinate is the next chunk awaiting sealing.
INGEST_KILL_POINTS: Tuple[str, ...] = (
    "ingest-pump",  # before pulling from the transport
    "ingest-apply",  # records pulled, trace about to grow
    "after-seal",  # a chunk cleared the barrier, diagnosis not started
)

#: Kill-points inside the fleet supervisor, outside any one pipeline's
#: per-chunk protocol.  Their ``chunk`` coordinate is the pipeline index
#: (launch order) for ``pipeline-launch`` and 0 for the whole-fleet
#: points.  A supervisor kill tears down every pipeline between chunk
#: commits (cooperative :class:`~repro.errors.ServiceStopped` at the next
#: chunk boundary), so a restarted fleet resumes each journal from a
#: clean prefix — the same byte-identical-recovery invariant, one level
#: up.
FLEET_KILL_POINTS: Tuple[str, ...] = (
    "fleet-start",  # before anything: no pipeline launched
    "pipeline-launch",  # pipelines [0, i) running, pipeline i not yet
    "fleet-drain",  # every pipeline joined, rollup not yet built
    "fleet-rollup",  # rollup built, report not yet returned
)

#: Kill-points inside the endurance machinery (journal rotation and
#: compaction, ingest watermark snapshots).  Kept separate from
#: KILL_POINTS for the same reason as the ingest points: a run with
#: rotation/compaction/snapshots disabled never passes through them, so
#: per-chunk coverage asserts must not expect them.  ``chunk`` is the
#: chunk whose commit triggered the maintenance step.
ENDURANCE_KILL_POINTS: Tuple[str, ...] = (
    "journal-rotate",  # active file full, rename into a segment not yet done
    "after-rotate",  # segment sealed and meta written
    "journal-compact",  # fold computed, compaction header not yet replaced
    "mid-compact",  # torn write inside the compaction header temp file
    "after-compact",  # header committed, retired segments not yet unlinked
    "after-ingest-snapshot",  # ingest watermark checkpoint committed
)

#: Kill-points inside the network sender (:mod:`repro.net.sender`),
#: reached at connect/send/ack boundaries.  Their ``chunk`` coordinate is
#: the sender's frame counter at the moment the point is reached, so a
#: plan can kill a sender at *every* frame boundary of a given record
#: set.  Killing here models a collector process dying mid-push; the
#: reconnect-with-resume protocol plus receiver-side dedup must keep
#: sealed chunks byte-identical regardless of which boundary died.
NET_KILL_POINTS: Tuple[str, ...] = (
    "net-connect",  # WELCOME processed, resume state applied
    "net-before-send",  # batch chosen, DATA frame not yet on the wire
    "net-after-send",  # DATA frame sent, ack not yet received
    "net-after-ack",  # an ACK/WELCOME was applied (pending pruned)
)

#: Kill-points inside the clock-model update path (clocked ingestion
#: only; a run with ``IngestConfig.clock=None`` never passes through
#: them).  ``chunk`` is the pump counter at the moment the point is
#: reached.  Killing here pins that the clock envelopes, fault ledger and
#: confidence discounts ride the snapshot ladder: a restart mid-model-
#: update must converge to the same repaired timestamps and therefore
#: byte-identical sealed chunks.
CLOCK_KILL_POINTS: Tuple[str, ...] = (
    "clock-update",  # a stream's envelope fit advanced this pump
    "clock-fault",  # a clock fault was detected this pump
)

#: Kill-points whose fault family is a torn write (prefix of the payload).
TORN_POINTS: Tuple[str, ...] = ("mid-journal", "mid-checkpoint", "mid-compact")

#: Kill-points whose fault family is post-commit corruption.
CORRUPT_POINTS: Tuple[str, ...] = ("corrupt-checkpoint",)


class SimulatedCrash(BaseException):
    """A simulated power cut.  BaseException so retry loops never eat it."""

    def __init__(self, point: str, chunk: int) -> None:
        super().__init__(f"simulated crash at {point!r} in chunk {chunk}")
        self.point = point
        self.chunk = chunk


@dataclass
class CrashPlan:
    """One armed fault: fire at (point, chunk), optionally tearing at a
    byte fraction or corrupting a committed file."""

    point: str
    chunk: int
    #: For torn points: fraction of the payload that survives, in (0, 1).
    tear_fraction: float = 0.5

    def __post_init__(self) -> None:
        known = (
            KILL_POINTS
            + INGEST_KILL_POINTS
            + FLEET_KILL_POINTS
            + ENDURANCE_KILL_POINTS
            + NET_KILL_POINTS
            + CLOCK_KILL_POINTS
        )
        if self.point not in known:
            raise ServiceError(
                f"unknown kill-point {self.point!r}; known: {known}"
            )
        if not (0.0 < self.tear_fraction < 1.0):
            raise ServiceError(
                f"tear_fraction must be in (0, 1), got {self.tear_fraction}"
            )


class CrashInjector:
    """Deterministic single-shot fault injector.

    Passed down through the service into the journal and checkpointer,
    which call :meth:`kill` / :meth:`torn_bytes` / :meth:`corrupt_file`
    at their kill-points.  Unarmed injectors are inert, so the same code
    path runs in production with ``faults=None`` short-circuits only.
    """

    def __init__(self, plan: Optional[CrashPlan] = None) -> None:
        self.plan = plan
        self.fired = False
        #: Every (point, chunk) the run passed through, armed or not —
        #: lets the soak assert coverage of the whole protocol.
        self.visited: List[Tuple[str, int]] = []

    def _armed(self, point: str, chunk: int) -> bool:
        return (
            self.plan is not None
            and not self.fired
            and self.plan.point == point
            and self.plan.chunk == chunk
        )

    def kill(self, point: str, chunk: int) -> None:
        """Crash here if armed for this (point, chunk); no-op otherwise."""
        self.visited.append((point, chunk))
        if self._armed(point, chunk):
            self.fired = True
            raise SimulatedCrash(point, chunk)

    def torn_bytes(
        self, point: str, chunk: int, data: bytes
    ) -> Optional[Tuple[bytes, "SimulatedCrash"]]:
        """``(surviving prefix, crash)`` when armed to tear here, else None.

        The caller writes the prefix, makes it durable, and raises the
        crash — the torn write *is* the power cut.
        """
        self.visited.append((point, chunk))
        if not self._armed(point, chunk):
            return None
        self.fired = True
        keep = max(1, int(len(data) * self.plan.tear_fraction))
        keep = min(keep, len(data) - 1)  # strictly partial
        return data[:keep], SimulatedCrash(point, chunk)

    def corrupt_file(self, point: str, chunk: int, path: Path) -> None:
        """Flip bytes mid-file and crash, when armed for this point."""
        self.visited.append((point, chunk))
        if not self._armed(point, chunk):
            return
        self.fired = True
        raw = bytearray(Path(path).read_bytes())
        if raw:
            mid = len(raw) // 2
            for i in range(mid, min(mid + 8, len(raw))):
                raw[i] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
            handle.flush()
            os.fsync(handle.fileno())
        raise SimulatedCrash(point, chunk)


@dataclass
class FlakyPlan:
    """Transient-failure schedule: chunk -> number of attempts that fail
    before one succeeds (exercises retry/backoff, not crash recovery)."""

    failures: dict = field(default_factory=dict)  # chunk -> remaining fails

    def should_fail(self, chunk: int) -> bool:
        remaining = self.failures.get(chunk, 0)
        if remaining <= 0:
            return False
        self.failures[chunk] = remaining - 1
        return True
