"""Live health registry: operator-facing reports over service state dirs.

A week-long always-on deployment needs answers an exception traceback
cannot give: *is every pipeline healthy, what has degraded, what would a
restart cost right now, and is memory actually bounded?*  This module
answers them **offline, from bytes on disk** — the journal (plus its
compaction header), the checkpoint ladder and the ingest-snapshot ladder
are the complete observable state of a crash-only service, so health
reporting needs no hook into the running process and works identically
on a live, crashed, or long-stopped deployment.

The registry is a name -> generator table (:data:`REPORTS`).  Each
report renders a deterministic plain-text table over one or more
pipeline state directories:

``pipeline-summary``
    One line per pipeline: chunks committed, victims diagnosed/shed,
    resumes survived, journal and checkpoint sizes.
``degradation``
    Telemetry damage and load shedding: quarantined NFs, minimum
    completeness, gap counts (live + evicted), shed victims, ingest
    sheds, dead-lettered chunks.
``replay-cost``
    What a crash right now would cost: bounded vs full replays so far,
    the newest ingest snapshot's boundary, and the replay suffix
    (chunks past that snapshot) a restart would re-ingest.
``memory-trend``
    Bounded-memory evidence: tally entries vs budget (with evictions
    and the sketch error floor), builder state evicted by watermark
    pruning, journal directory bytes vs logical bytes (rotation +
    compaction reclaim), ingest snapshot size.
``top-culprits``
    The fleet-rollup view with sketch error bars: blame is reported as
    ``score (±error)`` so an operator can tell exact tallies from
    budget-bounded ones.
``transport``
    The network ingestion plane: per-pipeline reconnect/disconnect/retry
    counters from the checkpointed stats payload, and — when a live
    :class:`~repro.net.server.SocketIngestServer` is attached via
    :meth:`HealthRegistry.attach_transport` — per-stream connection
    state, acked sequence, buffered depth, and heartbeat age straight
    from the accept loop.  The disk half works on a dead deployment like
    every other report; the live half exists because peer liveness is
    the one thing bytes on disk cannot show.
``clock``
    The time domain: per-stream clock-model state (offset, drift,
    uncertainty bound, fault history, frozen flag) from the newest
    ingest snapshot's serialized :class:`~repro.time.model.ClockBank` —
    or straight from a live builder attached via
    :meth:`HealthRegistry.attach_builder`.  Falls back to the
    checkpointed ``ingest_clock_*`` counters when no snapshot carries
    model state.

Use :class:`HealthRegistry` pointed at a single service ``state_dir`` or
at a fleet root (its ``pipelines/*`` children are discovered); ``render``
produces one report, ``render_all`` the full dashboard.  The module is
also a CLI — ``python -m repro.service.health <root> [report]`` renders
the dashboard (or one report) from state-dir bytes alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.service.checkpoint import Checkpointer
from repro.service.journal import ResultJournal


@dataclass
class PipelineHealth:
    """Everything the reports need about one pipeline, read once."""

    name: str
    directory: Path
    #: ``stats`` payload of the newest valid checkpoint ({} when none).
    stats: Dict[str, float] = field(default_factory=dict)
    next_chunk: int = 0
    has_checkpoint: bool = False
    #: Journal geometry.
    journal_bytes: int = 0
    journal_dir_bytes: int = 0
    retained_from: int = 0
    segments: int = 0
    compaction: Optional[dict] = None
    #: Derived from journal records (retained range only).
    chunk_records: int = 0
    dead_letters: int = 0
    quarantined_nfs: Tuple[str, ...] = ()
    min_completeness: float = 1.0
    last_ingest_evictions: int = 0
    #: Ingest snapshot ladder (bounded replay).
    snapshot_chunk: Optional[int] = None
    snapshot_bytes: int = 0
    #: Serialized :class:`~repro.time.model.ClockBank` from the newest
    #: ingest snapshot (None when clock models were off or no snapshot).
    clock_payload: Optional[dict] = None

    @property
    def replay_suffix_chunks(self) -> Optional[int]:
        """Chunks a restart would re-ingest past the newest snapshot."""
        if self.snapshot_chunk is None:
            return None
        return max(0, self.next_chunk - self.snapshot_chunk)


def _load_pipeline(name: str, directory: Path) -> PipelineHealth:
    health = PipelineHealth(name=name, directory=directory)
    journal_path = directory / "journal.jsonl"
    if journal_path.exists() or journal_path.with_suffix(".d").exists():
        journal = ResultJournal(journal_path, durable=False)
        health.journal_bytes = journal.size()
        health.journal_dir_bytes = journal.dir_bytes()
        health.retained_from = journal.retained_from
        health.segments = len(journal.segments())
        health.compaction = journal.compaction_info()
        completeness: List[float] = []
        quarantined: set = set()
        for _chunk, body in journal.records():
            kind = body.get("kind")
            if kind == "chunk_failed":
                health.dead_letters += 1
                continue
            if kind is not None:
                continue
            health.chunk_records += 1
            completeness.append(body.get("telemetry_completeness", 1.0))
            quarantined.update(body.get("quarantined_nfs", ()))
            health.last_ingest_evictions = body.get(
                "ingest_evictions", health.last_ingest_evictions
            )
        if completeness:
            health.min_completeness = min(completeness)
        health.quarantined_nfs = tuple(sorted(quarantined))
    checkpoints = directory / "checkpoints"
    if checkpoints.is_dir():
        loaded = Checkpointer(checkpoints, durable=False).load_latest()
        if loaded is not None:
            health.has_checkpoint = True
            health.stats = dict(loaded.payload.get("stats", {}))
            health.next_chunk = loaded.payload.get("next_chunk", 0)
    ingest_dir = directory / "ingest"
    if ingest_dir.is_dir():
        loaded = Checkpointer(ingest_dir, durable=False).load_latest()
        if loaded is not None and loaded.payload.get("kind") == "ingest":
            health.snapshot_chunk = loaded.payload.get("next_chunk")
            newest = ingest_dir / f"ckpt-{loaded.generation:08d}.json"
            if newest.exists():
                health.snapshot_bytes = newest.stat().st_size
            source = loaded.payload.get("source") or {}
            builder = source.get("builder") or {}
            clock = builder.get("clock")
            if isinstance(clock, dict):
                health.clock_payload = clock
    return health


class HealthRegistry:
    """Render registered health reports over one or many pipelines.

    ``root`` is either a single service ``state_dir`` (it contains
    ``journal.jsonl`` / ``checkpoints``) or a fleet state dir (pipelines
    discovered under ``<root>/pipelines/*``).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._pipelines: Optional[Dict[str, PipelineHealth]] = None
        #: pipeline name -> live ingest server (duck-typed: anything
        #: with ``transport_stats()``), see :meth:`attach_transport`.
        self._transports: Dict[str, object] = {}
        #: pipeline name -> live trace builder (duck-typed: anything
        #: with a ``clock`` attribute), see :meth:`attach_builder`.
        self._builders: Dict[str, object] = {}

    def attach_transport(self, pipeline: str, server) -> None:
        """Attach a live ingest server so the ``transport`` report can
        show per-stream connection state alongside the on-disk counters.

        ``server`` is duck-typed — it needs a ``transport_stats()``
        returning ``{stream: {state, acked_seq, buffered, eos,
        heartbeat_age_s, connects}}`` (the shape
        :meth:`repro.net.server.SocketIngestServer.transport_stats`
        produces).  Detached registries render the disk half only.
        """
        self._transports[pipeline] = server

    def attach_builder(self, pipeline: str, builder) -> None:
        """Attach a live trace builder so the ``clock`` report can show
        the current model state instead of the last-snapshot state.

        ``builder`` is duck-typed — it needs a ``clock`` attribute that
        is either None (models off) or a
        :class:`~repro.time.model.ClockBank` (the
        :class:`~repro.ingest.incremental.IncrementalTrace` shape).
        """
        self._builders[pipeline] = builder

    def _discover(self) -> Dict[str, Tuple[str, Path]]:
        fleet = self.root / "pipelines"
        if fleet.is_dir():
            return {
                child.name: (child.name, child)
                for child in sorted(fleet.iterdir())
                if child.is_dir()
            }
        return {self.root.name: (self.root.name, self.root)}

    def pipelines(self) -> Dict[str, PipelineHealth]:
        """Name -> loaded pipeline health, cached for this registry."""
        if self._pipelines is None:
            self._pipelines = {
                name: _load_pipeline(label, directory)
                for name, (label, directory) in self._discover().items()
            }
        return self._pipelines

    def render(self, report: str) -> str:
        """Render one registered report by name."""
        entry = REPORTS.get(report)
        if entry is None:
            raise ServiceError(
                f"unknown health report {report!r}; "
                f"available: {sorted(REPORTS)}"
            )
        return entry.generate(self)

    def render_all(self) -> str:
        """Every registered report, in registration order."""
        sections = []
        for name, entry in REPORTS.items():
            sections.append(f"== {name}: {entry.description}")
            sections.append(entry.generate(self))
        return "\n".join(sections)


@dataclass(frozen=True)
class HealthReport:
    """One registry entry: a category, a blurb, a render function."""

    name: str
    category: str
    description: str
    generate: Callable[[HealthRegistry], str]


#: The registry: report name -> :class:`HealthReport`.  Extend by
#: constructing a :class:`HealthReport` and assigning it here — the
#: registry is a plain dict precisely so deployments can add their own
#: views without touching this module.
REPORTS: Dict[str, HealthReport] = {}


def _register(name: str, category: str, description: str):
    def wrap(fn: Callable[[HealthRegistry], str]) -> Callable:
        REPORTS[name] = HealthReport(
            name=name, category=category, description=description, generate=fn
        )
        return fn

    return wrap


def _table(header: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


@_register("pipeline-summary", "overview", "per-pipeline progress and sizes")
def _pipeline_summary(registry: HealthRegistry) -> str:
    rows = []
    for name, p in sorted(registry.pipelines().items()):
        stats = p.stats
        rows.append(
            [
                name,
                str(p.next_chunk),
                str(int(stats.get("victims_diagnosed", 0))),
                str(int(stats.get("victims_shed", 0))),
                str(int(stats.get("resumes", 0))),
                str(p.journal_dir_bytes),
                str(int(stats.get("checkpoint_bytes", 0))),
                "yes" if p.has_checkpoint else "no",
            ]
        )
    return _table(
        [
            "pipeline",
            "chunks",
            "victims",
            "shed",
            "resumes",
            "journal_dir_B",
            "ckpt_B",
            "recoverable",
        ],
        rows,
    )


@_register("degradation", "telemetry", "quarantine, gaps, sheds, dead letters")
def _degradation(registry: HealthRegistry) -> str:
    rows = []
    for name, p in sorted(registry.pipelines().items()):
        stats = p.stats
        rows.append(
            [
                name,
                ",".join(p.quarantined_nfs) or "-",
                f"{p.min_completeness:.3f}",
                str(int(stats.get("ingest_gaps", 0))),
                str(int(stats.get("ingest_sheds", 0))),
                str(int(stats.get("victims_shed", 0))),
                str(p.dead_letters),
            ]
        )
    return _table(
        [
            "pipeline",
            "quarantined",
            "min_compl",
            "gaps",
            "ingest_sheds",
            "victims_shed",
            "dead_letters",
        ],
        rows,
    )


@_register("replay-cost", "recovery", "what a restart costs right now")
def _replay_cost(registry: HealthRegistry) -> str:
    rows = []
    for name, p in sorted(registry.pipelines().items()):
        stats = p.stats
        suffix = p.replay_suffix_chunks
        rows.append(
            [
                name,
                str(int(stats.get("bounded_resumes", 0))),
                str(int(stats.get("full_replays", 0))),
                "-" if p.snapshot_chunk is None else str(p.snapshot_chunk),
                "full" if suffix is None else f"{suffix} chunks",
                str(int(stats.get("journal_bytes_truncated", 0))),
            ]
        )
    return _table(
        [
            "pipeline",
            "bounded_resumes",
            "full_replays",
            "snapshot_at",
            "replay_suffix",
            "bytes_truncated",
        ],
        rows,
    )


@_register("memory-trend", "resources", "bounded-memory and bounded-disk evidence")
def _memory_trend(registry: HealthRegistry) -> str:
    rows = []
    for name, p in sorted(registry.pipelines().items()):
        stats = p.stats
        compaction = p.compaction or {}
        reclaimed = int(stats.get("journal_bytes_compacted", 0))
        rows.append(
            [
                name,
                str(int(stats.get("ingest_evictions", 0))),
                str(int(stats.get("ingest_snapshot_bytes", 0))),
                str(p.journal_dir_bytes),
                str(p.journal_bytes),
                str(p.segments),
                str(reclaimed or compaction.get("bytes_folded", 0)),
            ]
        )
    return _table(
        [
            "pipeline",
            "state_evicted",
            "snapshot_B",
            "journal_dir_B",
            "journal_logical_B",
            "segments",
            "bytes_reclaimed",
        ],
        rows,
    )


@_register("transport", "network", "push-transport connection and resume state")
def _transport(registry: HealthRegistry) -> str:
    rows = []
    for name, p in sorted(registry.pipelines().items()):
        stats = p.stats
        server = registry._transports.get(name)
        if server is None:
            rows.append(
                [
                    name,
                    "-",
                    "(offline)",
                    "-",
                    "-",
                    "-",
                    str(int(stats.get("ingest_reconnects", 0))),
                    str(int(stats.get("ingest_disconnects", 0))),
                    str(int(stats.get("ingest_transport_failures", 0))),
                    str(int(stats.get("ingest_retries", 0))),
                ]
            )
            continue
        for stream, info in sorted(server.transport_stats().items()):
            age = info.get("heartbeat_age_s")
            rows.append(
                [
                    name,
                    stream,
                    str(info.get("state", "?")),
                    str(info.get("acked_seq", -1)),
                    str(info.get("buffered", 0)),
                    f"{age:.1f}s" if age is not None else "-",
                    str(int(stats.get("ingest_reconnects", 0))),
                    str(int(stats.get("ingest_disconnects", 0))),
                    str(int(stats.get("ingest_transport_failures", 0))),
                    str(int(stats.get("ingest_retries", 0))),
                ]
            )
    return _table(
        [
            "pipeline",
            "stream",
            "state",
            "acked_seq",
            "buffered",
            "hb_age",
            "reconnects",
            "disconnects",
            "xport_fails",
            "retries",
        ],
        rows,
    )


@_register("clock", "time", "per-stream clock-model offset, drift, faults")
def _clock(registry: HealthRegistry) -> str:
    from repro.time.model import ClockBank

    rows = []
    for name, p in sorted(registry.pipelines().items()):
        bank: Optional[ClockBank] = None
        origin = "snapshot"
        builder = registry._builders.get(name)
        if builder is not None and getattr(builder, "clock", None) is not None:
            bank = builder.clock
            origin = "live"
        elif p.clock_payload is not None:
            bank = ClockBank.from_payload(p.clock_payload)
        if bank is None:
            stats = p.stats
            faults = int(stats.get("ingest_clock_faults", 0))
            if faults or int(stats.get("ingest_clock_updates", 0)):
                # Counters survive in the checkpoint even when no ingest
                # snapshot carries the serialized models.
                rows.append(
                    [
                        name,
                        "(all)",
                        "counters",
                        "-",
                        "-",
                        str(int(stats.get("ingest_clock_uncertainty_ns", 0))),
                        str(faults),
                        "-",
                        "-",
                    ]
                )
            else:
                rows.append([name, "-", "(off)", "-", "-", "-", "-", "-", "-"])
            continue
        stream_rows = bank.stream_stats()
        if not stream_rows:
            rows.append([name, "-", origin, "0", "0.0", "0", "0", "-", "no"])
        for stream, info in sorted(stream_rows.items()):
            rows.append(
                [
                    name,
                    stream,
                    origin,
                    str(info["offset_ns"]),
                    f"{info['drift_ppm']:.1f}",
                    str(info["uncertainty_ns"]),
                    str(info["faults"]),
                    info["fault_kinds"] or "-",
                    "yes" if info["frozen"] else "no",
                ]
            )
    return _table(
        [
            "pipeline",
            "stream",
            "state",
            "offset_ns",
            "drift_ppm",
            "uncert_ns",
            "faults",
            "fault_kinds",
            "frozen",
        ],
        rows,
    )


@_register("top-culprits", "diagnosis", "fleet blame with sketch error bars")
def _top_culprits(registry: HealthRegistry) -> str:
    from repro.fleet.rollup import FleetRollup, tally_from_journal

    tallies = {}
    for name, p in sorted(registry.pipelines().items()):
        journal_path = p.directory / "journal.jsonl"
        if journal_path.exists() or journal_path.with_suffix(".d").exists():
            tallies[name] = tally_from_journal(journal_path)
    if not tallies:
        return "(no journals)"
    return FleetRollup.from_tallies(tallies).format()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.service.health <root> [report]``.

    Renders the full dashboard (or a single named report) over a service
    state dir or fleet root, purely from bytes on disk — usable against
    a live, crashed, or stopped deployment alike.
    """
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.service.health <state-dir> [report]\n"
            f"reports: {', '.join(REPORTS)}",
            file=sys.stderr,
        )
        return 2 if not args else 0
    root = Path(args[0])
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2
    registry = HealthRegistry(root)
    try:
        if len(args) > 1:
            print(registry.render(args[1]))
        else:
            print(registry.render_all())
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
