"""Versioned, CRC-guarded checkpoint store with a recovery ladder.

One checkpoint is written per diagnosed chunk.  The store is crash-only in
the PrintQueue register-file sense: nothing is ever updated in place, every
commit is an atomic rename, and recovery never repairs — it simply selects
the newest checkpoint generation that validates and discards everything
after it.

On-disk layout inside the checkpoint directory::

    ckpt-00000007.json    {"version": 1, "generation": 7, "crc32": ..., "payload": {...}}
    ckpt-00000008.json
    MANIFEST.json         {"version": 1, "generations": [{generation, file, crc32, nbytes}, ...]}

A commit is two atomic writes: the generation file first, then the
manifest that references it (with the payload's CRC32).  A crash between
the two leaves an orphan generation file the manifest never mentions —
harmless, overwritten by the next commit.  ``load_ladder`` walks
generations newest-first and yields every one whose payload CRC matches
both the manifest and the file header; a corrupted newest generation
(detected by CRC) therefore falls back to the previous one instead of
crashing the service.  If the manifest itself is unreadable, the ladder
falls back to scanning ``ckpt-*.json`` headers directly.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.errors import CheckpointError, StorageError
from repro.util.atomicio import atomic_write_bytes, sweep_temp_files

# v2: the full culprit tally left the payload for a journalled snapshot
# digest ({crc32, snapshot_offset}); v1 checkpoints fail validation and
# fall through the ladder to a fresh start rather than mis-restoring.
CHECKPOINT_VERSION = 2
_MANIFEST = "MANIFEST.json"


def canonical_payload_bytes(payload: dict) -> bytes:
    """The byte string the CRC covers: canonical sorted-key JSON.

    Pure-JSON payloads round-trip exactly (ints are arbitrary precision,
    floats serialise via repr which is shortest-exact), so re-encoding a
    parsed payload reproduces the same bytes and the same CRC.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@dataclass
class LoadedCheckpoint:
    """One validated checkpoint plus how it was found."""

    payload: dict
    generation: int
    #: Generation files that failed validation before this one was accepted
    #: (newest-first): the recovery ladder's skip list.
    corrupt: List[str] = field(default_factory=list)
    #: True when this is not the newest generation on disk — the service
    #: fell back at least one step.
    fell_back: bool = False
    #: "manifest" when found via MANIFEST.json, "scan" via directory scan.
    source: str = "manifest"


class Checkpointer:
    """Atomic checkpoint writer/reader for one service state directory."""

    def __init__(
        self, directory: Union[str, Path], keep: int = 2, durable: bool = True
    ) -> None:
        if keep < 2:
            # Crash-only recovery needs at least one fallback generation:
            # the newest checkpoint can always be the one a crash corrupted.
            raise CheckpointError(f"keep must be >= 2, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.durable = durable
        self._generation = 0  # last committed (or resumed-from) generation
        #: Size in bytes of the last checkpoint file written.
        self.last_nbytes = 0
        #: Generation files rejected by the last ``load_ladder`` walk —
        #: populated even when every generation is corrupt and the ladder
        #: yields nothing (the service still wants to report the damage).
        self.rejected: List[str] = []

    # -- writing ----------------------------------------------------------------

    @staticmethod
    def _filename(generation: int) -> str:
        return f"ckpt-{generation:08d}.json"

    def save(self, payload: dict, faults=None, chunk: int = -1) -> int:
        """Commit ``payload`` as the next generation; returns the generation.

        ``faults`` is the crash-simulation injector (see
        :mod:`repro.service.crashsim`); production callers leave it None.
        """
        generation = self._generation + 1
        blob = canonical_payload_bytes(payload)
        crc = zlib.crc32(blob)
        record = {
            "version": CHECKPOINT_VERSION,
            "generation": generation,
            "crc32": crc,
            "payload": payload,
        }
        data = json.dumps(record, sort_keys=True).encode("utf-8")
        path = self.directory / self._filename(generation)
        tear = None
        if faults is not None:
            tear = lambda raw: faults.torn_bytes("mid-checkpoint", chunk, raw)
        try:
            self.last_nbytes = atomic_write_bytes(
                path, data, durable=self.durable, tear=tear
            )
        except OSError as exc:
            # ENOSPC / short write: atomic_write_bytes already unlinked the
            # temp file and never touched the target, so every committed
            # generation (and the manifest) is exactly as before the call.
            raise StorageError(
                f"checkpoint commit for generation {generation} failed "
                f"({exc}); previous generation remains recoverable"
            ) from exc
        if faults is not None:
            faults.kill("after-checkpoint-file", chunk)
        manifest_entries = self._manifest_entries()
        manifest_entries = [
            e for e in manifest_entries if e["generation"] < generation
        ]
        manifest_entries.append(
            {
                "generation": generation,
                "file": path.name,
                "crc32": crc,
                "nbytes": len(data),
            }
        )
        manifest_entries.sort(key=lambda e: e["generation"])
        kept = manifest_entries[-self.keep :]
        manifest = {"version": CHECKPOINT_VERSION, "generations": kept}
        try:
            atomic_write_bytes(
                self.directory / _MANIFEST,
                json.dumps(manifest, indent=2).encode("utf-8"),
                durable=self.durable,
            )
        except OSError as exc:
            # The new generation file is now an orphan the old manifest
            # never references — harmless, same as a crash between the
            # two writes; the previous generation stays selectable.
            raise StorageError(
                f"checkpoint manifest write for generation {generation} "
                f"failed ({exc}); previous generation remains recoverable"
            ) from exc
        self._generation = generation
        for entry in manifest_entries[: -self.keep]:
            try:
                (self.directory / entry["file"]).unlink()
            except OSError:
                pass
        if faults is not None:
            # The corrupt-checkpoint kill-point fires after a fully
            # committed checkpoint: it flips bytes in the generation file
            # (the manifest CRC now disagrees) and then crashes.
            faults.corrupt_file("corrupt-checkpoint", chunk, path)
        return generation

    def _manifest_entries(self) -> List[dict]:
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            return []
        try:
            manifest = json.loads(manifest_path.read_text())
            entries = manifest["generations"]
            return [e for e in entries if isinstance(e.get("generation"), int)]
        except (ValueError, KeyError, TypeError):
            return []

    # -- reading ----------------------------------------------------------------

    def _validate(
        self, path: Path, expect_crc: Optional[int] = None
    ) -> Optional[dict]:
        """Parse + CRC-check one generation file; None when invalid."""
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("version") != CHECKPOINT_VERSION:
            return None
        payload = record.get("payload")
        crc = record.get("crc32")
        if not isinstance(payload, dict) or not isinstance(crc, int):
            return None
        actual = zlib.crc32(canonical_payload_bytes(payload))
        if actual != crc:
            return None
        if expect_crc is not None and actual != expect_crc:
            return None
        return record

    def load_ladder(self) -> Iterator[LoadedCheckpoint]:
        """Yield validated checkpoints newest-first (the recovery ladder).

        Callers take the first rung that is *usable* (e.g. whose journal
        offset still exists); each yielded checkpoint carries the corrupt
        files skipped on the way down.  Yields nothing for a fresh
        directory.
        """
        corrupt = self.rejected = []
        entries = self._manifest_entries()
        if entries:
            newest = max(e["generation"] for e in entries)
            for entry in sorted(
                entries, key=lambda e: e["generation"], reverse=True
            ):
                path = self.directory / entry["file"]
                record = self._validate(path, expect_crc=entry.get("crc32"))
                if record is None:
                    corrupt.append(path.name)
                    continue
                yield LoadedCheckpoint(
                    payload=record["payload"],
                    generation=record["generation"],
                    corrupt=list(corrupt),
                    fell_back=record["generation"] < newest,
                    source="manifest",
                )
            return
        # No (usable) manifest: fall back to scanning generation files.
        paths = sorted(self.directory.glob("ckpt-*.json"), reverse=True)
        newest_seen: Optional[int] = None
        for path in paths:
            record = self._validate(path)
            if record is None:
                corrupt.append(path.name)
                continue
            if newest_seen is None:
                newest_seen = record["generation"]
            yield LoadedCheckpoint(
                payload=record["payload"],
                generation=record["generation"],
                corrupt=list(corrupt),
                fell_back=record["generation"] < newest_seen,
                source="scan",
            )

    def load_latest(self) -> Optional[LoadedCheckpoint]:
        """First rung of the ladder, or None for a fresh directory."""
        for loaded in self.load_ladder():
            return loaded
        return None

    def resume_from(self, loaded: LoadedCheckpoint) -> None:
        """Continue numbering after ``loaded`` (overwriting anything newer).

        Resuming from generation N makes the next commit N+1 even if a
        corrupt N+1 exists on disk — the atomic replace overwrites the
        corpse, which is how the ladder heals without a repair pass.
        """
        self._generation = loaded.generation
        sweep_temp_files(self.directory)

    @property
    def generation(self) -> int:
        return self._generation
