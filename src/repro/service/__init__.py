"""Always-on diagnosis service: crash-only checkpoint/restore runtime.

Supervises :class:`~repro.core.streaming.StreamingDiagnosis` chunk by
chunk with a journal + checkpoint commit protocol (SIGKILL-safe at every
point), watchdogged parallel diagnosis with retry/backoff, explicit load
shedding, and a deterministic chaos harness for proving all of it.
Sources are pluggable: a fixed trace replays offline, a live
:class:`LiveTraceSource` diagnoses chunks as :mod:`repro.ingest` seals
them from streaming telemetry.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    LoadedCheckpoint,
    canonical_payload_bytes,
)
from repro.service.crashsim import (
    CLOCK_KILL_POINTS,
    CORRUPT_POINTS,
    ENDURANCE_KILL_POINTS,
    FLEET_KILL_POINTS,
    INGEST_KILL_POINTS,
    KILL_POINTS,
    NET_KILL_POINTS,
    TORN_POINTS,
    CrashInjector,
    CrashPlan,
    FlakyPlan,
    SimulatedCrash,
)
from repro.service.health import (
    REPORTS,
    HealthRegistry,
    HealthReport,
    PipelineHealth,
)
from repro.service.journal import (
    ResultJournal,
    chunk_record,
    dead_letter_record,
    decode_diagnoses,
    tally_record,
    victim_from_wire,
    victim_to_wire,
)
from repro.service.runner import (
    DiagnosisService,
    ServiceConfig,
    ServiceReport,
    ServiceStats,
    shed_victims,
)
from repro.service.source import (
    FixedTraceSource,
    LiveTraceSource,
    trace_fingerprint,
    trace_from_collected,
    trace_from_directory,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CLOCK_KILL_POINTS",
    "CORRUPT_POINTS",
    "Checkpointer",
    "ENDURANCE_KILL_POINTS",
    "HealthRegistry",
    "HealthReport",
    "PipelineHealth",
    "REPORTS",
    "CrashInjector",
    "CrashPlan",
    "DiagnosisService",
    "FLEET_KILL_POINTS",
    "FixedTraceSource",
    "FlakyPlan",
    "INGEST_KILL_POINTS",
    "KILL_POINTS",
    "LiveTraceSource",
    "LoadedCheckpoint",
    "NET_KILL_POINTS",
    "ResultJournal",
    "ServiceConfig",
    "ServiceReport",
    "ServiceStats",
    "SimulatedCrash",
    "TORN_POINTS",
    "canonical_payload_bytes",
    "chunk_record",
    "dead_letter_record",
    "decode_diagnoses",
    "shed_victims",
    "tally_record",
    "trace_fingerprint",
    "trace_from_collected",
    "trace_from_directory",
    "victim_from_wire",
    "victim_to_wire",
]
