"""The always-on diagnosis service: crash-only chunked diagnosis.

:class:`DiagnosisService` drives :class:`~repro.core.streaming.StreamingDiagnosis`
chunk by chunk under a per-chunk commit protocol:

1. ``chunk-start``          — select the chunk's victims, shed over budget,
2. diagnose (watchdogged, retried with exponential backoff + jitter),
3. ``after-diagnose``       — results exist only in memory,
4. journal append + fsync   (``mid-journal`` can tear the write),
5. ``after-journal``        — journal is ahead of the checkpoint,
6. checkpoint commit        (``mid-checkpoint`` / ``after-checkpoint-file`` /
   ``corrupt-checkpoint`` fire inside :meth:`Checkpointer.save`),
7. ``after-checkpoint``     — chunk fully committed.

Kill the process at *any* of those points and a restarted service resumes
at the last committed chunk boundary: the recovery ladder selects the
newest checkpoint that validates, the journal is truncated back to the
offset that checkpoint covers (discarding torn or uncovered tails), and
diagnosis — which is deterministic and memo-result-invariant — re-runs
the interrupted chunk to byte-identical journal lines.  There is no
repair path anywhere: recovery is selection plus truncation.

Load shedding is explicit and never silent: when a chunk's victim list
exceeds ``max_victims_per_chunk``, the keep-set retains the worst victims
(drops first, then by metric) and every shed pid is journalled with the
chunk and counted in :class:`ServiceStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

import zlib

from repro.aggregation.sketches import BoundedCulpritTally, tally_from_payload
from repro.aggregation.tallies import CulpritTally
from repro.core.diagnosis import VictimDiagnosis
from repro.core.records import DiagTrace
from repro.core.streaming import StreamingConfig, StreamingDiagnosis
from repro.core.victims import Victim
from repro.errors import (
    CheckpointError,
    IngestError,
    ServiceError,
    ServiceStopped,
    TransientError,
)
from repro.ingest.watermark import SNAPSHOT_VERSION
from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    canonical_payload_bytes,
)
from repro.service.journal import (
    ResultJournal,
    chunk_record,
    dead_letter_record,
    decode_diagnoses,
    tally_record,
)
from repro.service.source import FixedTraceSource, trace_fingerprint
from repro.util.retry import RetryPolicy, backoff_delay, retry_call
from repro.util.rng import substream

# v3: sketch-backed aggregation (tally_budget joins the fingerprint —
# budgeted and exact tallies accumulate differently, so their checkpoints
# must never cross-resume).  v2 introduced live mode, absolute victim
# thresholds, and the tally digest.
SERVICE_STATE_VERSION = 3


@dataclass
class ServiceConfig:
    """Operating parameters of one service instance."""

    state_dir: Union[str, Path]
    chunk_ns: int = 50_000_000
    margin_ns: int = 100_000_000
    victim_pct: float = 99.0
    #: Absolute hop-latency victim threshold (ns).  When set it replaces
    #: the percentile rule; **required in live mode**, where victim
    #: selection must be prefix-stable (a trace-global percentile over a
    #: still-growing trace is not causal).
    victim_threshold_ns: Optional[int] = None
    #: Append a rolling tally snapshot to the journal every N chunks and
    #: checkpoint only a {crc32, snapshot_offset} digest, so checkpoint
    #: size stays flat no matter how long the run (0 = snapshot never;
    #: restores then replay the whole journal to rebuild the tally).
    tally_compact_every: int = 8
    #: Per-chunk diagnosis parallelism: None = serial, an int = that many
    #: worker processes, "auto" = serial below the engine's victim-count
    #: threshold, parallel above it (decision counted in cache_stats).
    workers: Union[int, str, None] = None
    #: How many pipelines share the host (fleet fan-out): divides the CPU
    #: budget the ``workers="auto"`` resolver hands each pipeline, so N
    #: concurrent services don't oversubscribe the machine N-fold.  Pure
    #: parallelism hint — never affects results, so it stays out of the
    #: fingerprint (like ``workers`` itself).
    concurrent_pipelines: int = 1
    #: Watchdog deadline per parallel shard; a wedged worker is killed and
    #: its victims retried serially (surfaced as ``worker_timeouts``).
    task_timeout_s: Optional[float] = None
    #: Load-shedding budget: max victims diagnosed per chunk (None = all).
    max_victims_per_chunk: Optional[int] = None
    #: Transient-failure retry policy: up to ``max_retries`` re-attempts
    #: with ``base * 2**attempt`` backoff (capped), jittered by the
    #: checkpointed RNG so schedules replay identically after a resume.
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter_seed: int = 0
    #: Checkpoint generations retained (>= 2: corrupt-newest fallback).
    keep_checkpoints: int = 2
    #: fsync everything (tests on tmpfs may turn this off for speed).
    durable: bool = True
    #: Bounded memory: entry budget for the culprit tally (None = exact,
    #: unbounded).  With a budget the tally is a weighted SpaceSaving
    #: sketch — exact while distinct culprits fit, error-bounded above —
    #: and the budget joins the fingerprint (it changes journalled tally
    #: snapshots, so budgeted and exact runs must never cross-resume).
    tally_budget: Optional[int] = None
    #: Bounded disk: seal the journal's active file into a segment once it
    #: reaches this many bytes (0 = never rotate).  Rotation is physical
    #: layout only — logical offsets and bytes are unchanged.
    journal_rotate_bytes: int = 0
    #: Fold sealed segments older than every retained checkpoint's needs
    #: into the compaction header once they exceed this many bytes
    #: (0 = never).  Requires ``tally_compact_every > 0``: without tally
    #: snapshots every checkpoint replays the journal from offset zero,
    #: pinning the compaction floor there forever.
    journal_compact_bytes: int = 0
    #: Bounded replay: snapshot the ingest state (transport cursors, feed
    #: buffers, builder) every N committed chunks, so recovery replays a
    #: bounded suffix of the transport instead of the whole run
    #: (0 = never snapshot; recovery then re-ingests from record zero).
    ingest_checkpoint_every: int = 0
    #: Bounded memory, ingest side: prune builder state more than this
    #: many chunks behind the next chunk at each boundary.  None derives
    #: ``ceil(margin_ns / chunk_ns) + 2`` when ingest snapshots are on and
    #: disables pruning otherwise; explicit values are clamped up to the
    #: margin so no future chunk's window is ever eaten.
    replay_retain_chunks: Optional[int] = None
    #: After the retry budget, journal a ``chunk_failed`` dead letter and
    #: keep going instead of failing the whole service (False = raise,
    #: the fail-stop default).
    dead_letter_chunks: bool = False

    def fingerprint(self, source) -> dict:
        """Identity stamped into checkpoints: resume must match exactly.

        Anything that changes which victims exist or how chunks are cut
        makes old checkpoints meaningless, so it all goes in.  ``source``
        is a TelemetrySource (fingerprinted by its own notion of
        identity) or a bare trace."""
        source_fp = (
            source.fingerprint()
            if hasattr(source, "fingerprint")
            else trace_fingerprint(source)
        )
        return {
            "state_version": SERVICE_STATE_VERSION,
            "chunk_ns": self.chunk_ns,
            "margin_ns": self.margin_ns,
            "victim_pct": self.victim_pct,
            "victim_threshold_ns": self.victim_threshold_ns,
            "tally_compact_every": self.tally_compact_every,
            "tally_budget": self.tally_budget,
            "jitter_seed": self.jitter_seed,
            "trace": source_fp,
        }


@dataclass
class ServiceStats:
    """Everything the service did, including what it survived.

    Rides inside the checkpoint payload, so counters accumulated before a
    crash are not lost — ``resumes`` and friends then record the recovery
    itself.  All fields are ints/floats: the payload is pure JSON.
    """

    chunks_done: int = 0
    victims_diagnosed: int = 0
    #: Load shedding (never silent): victims dropped over budget, and in
    #: how many chunks the budget bit.
    victims_shed: int = 0
    shed_chunks: int = 0
    #: Transient-failure handling.
    transient_failures: int = 0
    retries: int = 0
    backoff_total_s: float = 0.0
    #: Hung/killed parallel workers (deltas pulled from the engine).
    worker_failures: int = 0
    worker_timeouts: int = 0
    #: Durability.
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    journal_bytes: int = 0
    #: Recovery: set by the run that performs it, then carried forward.
    resumes: int = 0
    corrupt_checkpoints: int = 0
    checkpoint_fallbacks: int = 0
    journal_bytes_truncated: int = 0
    #: Live ingestion (absolute values synced from the TelemetrySource —
    #: a restarted service re-ingests from the transport's beginning, so
    #: overwrites, never accumulation, keep them restart-consistent).
    ingest_records_applied: int = 0
    ingest_records_pulled: int = 0
    ingest_duplicates: int = 0
    ingest_rejects: int = 0
    ingest_gaps: int = 0
    ingest_quarantined: int = 0
    ingest_transport_failures: int = 0
    ingest_disconnects: int = 0
    ingest_retries: int = 0
    ingest_reconnects: int = 0
    ingest_sheds: int = 0
    ingest_peak_buffered: int = 0
    ingest_evictions: int = 0
    #: Clock-fault tolerance (zero when clock models are disabled).
    ingest_clock_faults: int = 0
    ingest_clock_repairs: int = 0
    ingest_clock_updates: int = 0
    ingest_clock_uncertainty_ns: int = 0
    #: Endurance: bounded replay, dead letters, journal rotation.
    #: ``bounded_resumes``/``full_replays`` classify each live-mode resume
    #: by whether an ingest snapshot bounded the transport replay.
    bounded_resumes: int = 0
    full_replays: int = 0
    ingest_snapshots: int = 0
    ingest_snapshot_bytes: int = 0
    chunks_dead_lettered: int = 0
    journal_rotations: int = 0
    journal_compactions: int = 0
    journal_bytes_compacted: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "ServiceStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class ServiceReport:
    """Final output of :meth:`DiagnosisService.run`."""

    diagnoses: List[VictimDiagnosis]
    tally: CulpritTally
    stats: ServiceStats
    n_chunks: int


def shed_victims(
    victims: List[Victim], budget: Optional[int]
) -> Tuple[List[Victim], List[Victim]]:
    """(kept, shed) under ``budget``, retaining the worst victims.

    Priority: drops before latency victims, then higher metric; ties break
    on (arrival, pid) so the keep-set is deterministic.  Kept victims stay
    in their original arrival order — diagnosis order must not depend on
    whether shedding ran.
    """
    if budget is None or len(victims) <= budget:
        return victims, []
    ranked = sorted(
        victims,
        key=lambda v: (v.kind != "drop", -v.metric, v.arrival_ns, v.pid),
    )
    keep_pids = {v.pid for v in ranked[:budget]}
    kept = [v for v in victims if v.pid in keep_pids]
    shed = [v for v in victims if v.pid not in keep_pids]
    return kept, shed


class DiagnosisService:
    """Supervised continuous diagnosis over one trace with crash recovery.

    ``clock``/``sleep`` are injectable for tests (backoff without real
    waiting); ``faults`` is the :mod:`repro.service.crashsim` injector and
    ``flaky`` a transient-failure schedule — both None in production.
    """

    def __init__(
        self,
        trace: Union[DiagTrace, object],
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        faults=None,
        flaky=None,
        executor=None,
        stop_check: Optional[Callable[[], bool]] = None,
        pipeline: str = "",
        scheduler=None,
    ) -> None:
        # A bare DiagTrace is the replay path: wrap it in the fixed
        # source so the run loop sees one TelemetrySource shape.
        if hasattr(trace, "pump"):
            self.source = trace
        else:
            self.source = FixedTraceSource(trace, chunk_ns=config.chunk_ns)
        self.trace = self.source.trace
        if self.source.live:
            if self.source.chunk_ns != config.chunk_ns:
                raise ServiceError(
                    f"source seals {self.source.chunk_ns}ns chunks but the "
                    f"service diagnoses {config.chunk_ns}ns chunks"
                )
            if config.victim_threshold_ns is None:
                raise ServiceError(
                    "live mode requires victim_threshold_ns: percentile "
                    "victim selection is not causal over a growing trace"
                )
        if config.journal_compact_bytes and not config.tally_compact_every:
            raise ServiceError(
                "journal compaction requires tally snapshots "
                "(tally_compact_every > 0): without them every checkpoint "
                "replays the journal from offset zero, so the compaction "
                "floor never rises"
            )
        self.config = config
        self.clock = clock
        self.sleep = sleep
        self.faults = faults
        self.flaky = flaky
        #: Persistent worker pool shared across pipelines (fleet mode).
        #: None keeps the spawn-per-call parallel path — the service never
        #: creates a pool on its own; injection is the opt-in.
        self.executor = executor
        #: Supervisor stop order, polled at chunk boundaries only: a
        #: sibling pipeline's crash stops this one *between* committed
        #: chunks, never inside one, via :class:`ServiceStopped`.
        self.stop_check = stop_check
        #: Name under the fleet supervisor (diagnostics only).
        self.pipeline = pipeline
        #: Fleet fair scheduler: a chunk slot is acquired around each
        #: chunk's commit protocol, bounding per-pipeline inflight chunks.
        #: Purely a pacing mechanism — slots gate *when* a chunk runs,
        #: never what it computes, so output stays schedule-independent.
        self.scheduler = scheduler
        state_dir = Path(config.state_dir)
        self.checkpointer = Checkpointer(
            state_dir / "checkpoints",
            keep=config.keep_checkpoints,
            durable=config.durable,
        )
        self.journal = ResultJournal(
            state_dir / "journal.jsonl", durable=config.durable
        )
        #: Bounded replay: a second checkpoint ladder for ingest snapshots.
        #: Strictly an optimization — a lost or unusable snapshot only
        #: means a full transport replay, never wrong output — so it is
        #: created only when the feature is on and the source is live.
        self.ingest_checkpointer: Optional[Checkpointer] = None
        if config.ingest_checkpoint_every and self.source.live:
            self.ingest_checkpointer = Checkpointer(
                state_dir / "ingest",
                keep=config.keep_checkpoints,
                durable=config.durable,
            )
        retain = config.replay_retain_chunks
        if retain is None and config.ingest_checkpoint_every:
            retain = -(-config.margin_ns // config.chunk_ns) + 2
        if retain is not None:
            # Never prune into a future chunk's diagnosis window: chunk k's
            # window reaches margin_ns behind k*chunk_ns.
            retain = max(retain, -(-config.margin_ns // config.chunk_ns) + 1)
        self._retain_chunks: Optional[int] = retain
        self.stream = StreamingDiagnosis(
            self.trace,
            StreamingConfig(chunk_ns=config.chunk_ns, margin_ns=config.margin_ns),
            victim_pct=config.victim_pct,
            victim_threshold_ns=config.victim_threshold_ns,
            workers=config.workers,
            task_timeout_s=config.task_timeout_s,
            executor=executor,
            concurrent_pipelines=config.concurrent_pipelines,
        )
        self.stats = ServiceStats()
        self.tally = self._make_tally()
        #: Journal offset of the newest tally snapshot (None = no snapshot
        #: yet; tally rebuilds replay the journal from this point).
        self._tally_ref: Optional[int] = None
        self._fingerprint = config.fingerprint(self.source)
        self._rng = substream(config.jitter_seed, "service-backoff")
        self._retry_policy = RetryPolicy(
            max_retries=config.max_retries,
            base_s=config.backoff_base_s,
            cap_s=config.backoff_cap_s,
        )
        # Engine worker counters are absolute per engine instance; the
        # service accumulates deltas so they survive engine re-opens.
        self._worker_failures_seen = 0
        self._worker_timeouts_seen = 0
        # High-water marks for the clock kill-points: a point fires when
        # the synced absolute counter moves past what this run has seen.
        self._clock_updates_seen = 0
        self._clock_faults_seen = 0

    # -- recovery ---------------------------------------------------------------

    def _make_tally(self) -> CulpritTally:
        """Fresh tally of the configured flavour (exact or budgeted)."""
        if self.config.tally_budget is not None:
            return BoundedCulpritTally(budget=self.config.tally_budget)
        return CulpritTally()

    def _ingest_fingerprint(self) -> dict:
        """Identity stamped into ingest snapshots.

        Includes the snapshot cadence and retention horizon on top of the
        service fingerprint: a snapshot taken under a different pruning
        schedule holds a differently pruned state, and restoring it would
        diverge from the uninterrupted run it must be byte-identical to.
        """
        return {
            "service": self._fingerprint,
            "snapshot_version": SNAPSHOT_VERSION,
            "every": self.config.ingest_checkpoint_every,
            "retain": self._retain_chunks,
        }

    def _restore_ingest(self, next_chunk: int) -> None:
        """Bound the transport replay with the newest usable snapshot.

        Usable means: fingerprint matches, and the snapshot's boundary is
        at or before the service's resume point (a snapshot *ahead* of the
        resume point would skip chunks the service still has to diagnose).
        Anything else — including a fingerprint mismatch, which for the
        *service* ladder is fatal — just falls back to a full replay:
        snapshots are an optimization, never a correctness requirement.
        """
        if not self.source.live or next_chunk <= 0:
            return
        if self.ingest_checkpointer is None:
            self.stats.full_replays += 1
            return
        fingerprint = self._ingest_fingerprint()
        newest = None
        restored = False
        for loaded in self.ingest_checkpointer.load_ladder():
            if newest is None:
                newest = loaded
            payload = loaded.payload
            if (
                payload.get("kind") != "ingest"
                or payload.get("fingerprint") != fingerprint
                or payload.get("next_chunk", 0) > next_chunk
            ):
                continue
            try:
                self.source.restore_state(payload["source"])
            except (IngestError, KeyError, TypeError, ValueError):
                continue
            restored = True
            break
        if newest is not None:
            # Continue numbering past the newest valid generation even on
            # a full replay, so fresh snapshots never collide with stale
            # files from before the crash.
            self.ingest_checkpointer.resume_from(newest)
        if restored:
            self.stats.bounded_resumes += 1
        else:
            self.stats.full_replays += 1

    def _restore(self) -> int:
        """Select a resume point; returns the first chunk still to do.

        Walks the checkpoint ladder newest-first.  A rung is usable when
        its fingerprint matches this service and the journal still holds
        the bytes it covers; unusable-but-valid rungs with a *different*
        fingerprint are a config/trace mismatch and fatal.  With no usable
        rung the service starts fresh — discarding any journal bytes, which
        no checkpoint vouches for.
        """
        for loaded in self.checkpointer.load_ladder():
            payload = loaded.payload
            if payload.get("fingerprint") != self._fingerprint:
                raise CheckpointError(
                    f"checkpoint generation {loaded.generation} in "
                    f"{self.checkpointer.directory} was written by a different "
                    "service configuration or trace; refusing to resume"
                )
            try:
                discarded = self.journal.truncate_to(payload["journal_offset"])
                tally = self._rebuild_tally(payload["tally_digest"])
            except ServiceError:
                # Journal lost (or corrupted) bytes this rung relies on:
                # fall back a rung.
                continue
            self.stats = ServiceStats.from_payload(payload["stats"])
            self.tally = tally
            self._tally_ref = payload["tally_digest"]["snapshot_offset"]
            self._rng.bit_generator.state = payload["rng_state"]
            self.stats.resumes += 1
            self.stats.corrupt_checkpoints += len(loaded.corrupt)
            if loaded.fell_back or loaded.corrupt:
                self.stats.checkpoint_fallbacks += 1
            self.stats.journal_bytes_truncated += discarded
            self.checkpointer.resume_from(loaded)
            self._restore_ingest(payload["next_chunk"])
            return payload["next_chunk"]
        # Fresh start (possibly because every generation was corrupt).
        self.stats.corrupt_checkpoints += len(self.checkpointer.rejected)
        if self.checkpointer.rejected:
            self.stats.resumes += 1
            self.stats.checkpoint_fallbacks += 1
        self.stats.journal_bytes_truncated += self.journal.truncate_to(0)
        return 0

    def _rebuild_tally(self, digest: dict) -> CulpritTally:
        """Reconstruct the culprit tally from its journalled snapshot.

        The checkpoint carries only ``{crc32, snapshot_offset}``; the full
        tally lives in the journal as the newest tally snapshot record,
        plus the chunk records appended after it (replayed here — per-chunk
        ``update`` with wire-decoded diagnoses reproduces the original
        float accumulation exactly, since the JSON wire round-trips floats
        bit-for-bit and preserves order).  A CRC mismatch means the
        journal region this rung relies on was damaged: raise, so the
        caller falls down the ladder.
        """
        snapshot_offset = digest["snapshot_offset"]
        tally = self._make_tally()
        replay_from = 0
        if snapshot_offset is not None:
            _chunk, body, replay_from = self.journal.record_at(snapshot_offset)
            if body.get("kind") != "tally":
                raise ServiceError(
                    f"checkpoint tally digest points at offset "
                    f"{snapshot_offset}, which is not a tally snapshot"
                )
            tally = tally_from_payload(body["tally"])
        elif self.journal.retained_from:
            # No snapshot but the journal was compacted: the pre-floor
            # chunk records live folded inside the compaction header.
            compacted = self.journal.compacted_tally_payload()
            if compacted is not None:
                tally = tally_from_payload(compacted)
                replay_from = self.journal.retained_from
        for _chunk, body in self.journal.records(start_offset=replay_from):
            if "kind" in body:
                continue
            tally.update(decode_diagnoses(body))
        crc = zlib.crc32(canonical_payload_bytes(tally.to_payload()))
        if crc != digest["crc32"]:
            raise ServiceError(
                "rebuilt tally does not match the checkpointed digest CRC"
            )
        return tally

    # -- per-chunk protocol -----------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        return backoff_delay(self._retry_policy, attempt, self._rng)

    def _diagnose_with_retry(self, index: int, victims: List[Victim]):
        """Retry transient chunk failures with jittered backoff.

        Catches ``Exception`` only: :class:`SimulatedCrash` (and real
        SIGKILL) are BaseException and always unwind the process.  The
        jitter comes from the checkpointed RNG via the shared
        :mod:`repro.util.retry` helper, so restored runs replay the
        identical delay schedule.
        """

        def attempt_chunk():
            if self.flaky is not None and self.flaky.should_fail(index):
                raise TransientError(f"injected transient failure in chunk {index}")
            return self.stream.diagnose_chunk(index, victims=victims)

        def on_failure(exc: BaseException, attempt: int) -> None:
            self.stats.transient_failures += 1

        def on_retry(delay: float) -> None:
            self.stats.retries += 1
            self.stats.backoff_total_s += delay

        return retry_call(
            attempt_chunk,
            self._retry_policy,
            self._rng,
            sleep=self.sleep,
            retry_on=Exception,
            on_failure=on_failure,
            on_retry=on_retry,
            give_up=lambda exc, attempts: ServiceError(
                f"chunk {index} failed after {attempts} attempts: {exc}"
            ),
        )

    def _harvest_worker_stats(self) -> None:
        engine = self.stream.engine
        if engine is None:
            return
        cache = engine.cache_stats
        self.stats.worker_failures += (
            cache.worker_failures - self._worker_failures_seen
        )
        self.stats.worker_timeouts += (
            cache.worker_timeouts - self._worker_timeouts_seen
        )
        self._worker_failures_seen = cache.worker_failures
        self._worker_timeouts_seen = cache.worker_timeouts

    def _checkpoint_payload(self, next_chunk: int, journal_offset: int) -> dict:
        # The tally itself stays out of the payload: its size grows with
        # the number of distinct culprits seen, which would make
        # checkpoints grow without bound on long runs.  The digest pins
        # the exact value (CRC over the canonical payload) while the data
        # lives in the journal (snapshot + replayable chunk records).
        tally_crc = zlib.crc32(canonical_payload_bytes(self.tally.to_payload()))
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self._fingerprint,
            "next_chunk": next_chunk,
            "journal_offset": journal_offset,
            "stats": self.stats.to_payload(),
            "tally_digest": {"crc32": tally_crc, "snapshot_offset": self._tally_ref},
            "rng_state": self._rng.bit_generator.state,
        }

    def _check_stop(self) -> None:
        """Honour a supervisor stop order at a chunk boundary.

        :class:`ServiceStopped` is BaseException, like a simulated crash:
        it unwinds past the retry machinery, and because it only ever
        fires *between* chunk commits the journal/checkpoint pair it
        leaves behind is exactly what a kill at a chunk boundary leaves —
        a restart resumes byte-identically.
        """
        if self.stop_check is not None and self.stop_check():
            raise ServiceStopped(self.pipeline)

    def _process_chunk(
        self, index: int, ingest_sheds: Tuple = (), ingest_evictions: int = 0
    ) -> None:
        self._check_stop()
        if self.scheduler is not None:
            self.scheduler.acquire(self.pipeline)
            try:
                self._process_chunk_inner(index, ingest_sheds, ingest_evictions)
            finally:
                self.scheduler.release(self.pipeline)
            return
        self._process_chunk_inner(index, ingest_sheds, ingest_evictions)

    def _process_chunk_inner(
        self, index: int, ingest_sheds: Tuple = (), ingest_evictions: int = 0
    ) -> None:
        faults = self.faults
        if faults is not None:
            faults.kill("chunk-start", index)
        victims = self.stream.victims_for_chunk(index)
        kept, shed = shed_victims(victims, self.config.max_victims_per_chunk)
        try:
            result = self._diagnose_with_retry(index, kept)
        except ServiceError as exc:
            if not self.config.dead_letter_chunks:
                raise
            self._dead_letter_chunk(index, kept, str(exc))
            return
        self._harvest_worker_stats()
        if faults is not None:
            faults.kill("after-diagnose", index)
        shed_pids = tuple(v.pid for v in shed)
        offset = self.journal.append(
            index,
            chunk_record(
                result,
                shed_pids,
                ingest_sheds=ingest_sheds,
                ingest_evictions=ingest_evictions,
            ),
            faults=faults,
        )
        if faults is not None:
            faults.kill("after-journal", index)
        # Everything below folds the chunk into checkpointed state; the
        # checkpoint optimistically counts itself (an uncommitted one is
        # never loaded, so the restored count stays consistent).
        self.tally.update(result.diagnoses)
        every = self.config.tally_compact_every
        if every and (index + 1) % every == 0:
            # Snapshot the tally *behind* the chunk record; a crash before
            # the checkpoint truncates both away and the re-run re-appends
            # both byte-identically.
            snapshot_start = offset
            offset = self.journal.append(
                index, tally_record(self.tally), faults=faults
            )
            self._tally_ref = snapshot_start
        self.stats.chunks_done += 1
        self.stats.victims_diagnosed += len(result.diagnoses)
        if shed:
            self.stats.victims_shed += len(shed)
            self.stats.shed_chunks += 1
        self._commit_chunk(index, offset)

    def _dead_letter_chunk(self, index: int, kept: List[Victim], cause: str) -> None:
        """Journal a poison chunk and move on (opt-in, never silent).

        The dead letter rides the same commit protocol as a diagnosis: a
        crash anywhere around it truncates and re-runs the chunk, and the
        re-run — same victims, same exhausted retry budget, same cause
        string — re-appends the identical record.
        """
        faults = self.faults
        self._harvest_worker_stats()
        # The carried engine may still be positioned behind the poisoned
        # chunk (a failure can fire before any diagnosis ran); advance it
        # so the next chunk's sequential-visit contract holds.
        self.stream.skip_chunk(index)
        chunk_ns = self.config.chunk_ns
        body = dead_letter_record(
            cause=cause,
            attempts=self.config.max_retries + 1,
            start_ns=index * chunk_ns,
            end_ns=(index + 1) * chunk_ns,
            victims=kept,
        )
        offset = self.journal.append(index, body, faults=faults)
        if faults is not None:
            faults.kill("after-journal", index)
        self.stats.chunks_done += 1
        self.stats.chunks_dead_lettered += 1
        self._commit_chunk(index, offset)

    def _commit_chunk(self, index: int, offset: int) -> None:
        """Common commit tail: checkpoint, then bound the journal's disk."""
        faults = self.faults
        self.stats.journal_bytes = offset
        self.stats.checkpoints_written += 1
        self.checkpointer.save(
            self._checkpoint_payload(index + 1, offset), faults=faults, chunk=index
        )
        self.stats.checkpoint_bytes = self.checkpointer.last_nbytes
        self._maintain_journal(index)
        if faults is not None:
            faults.kill("after-checkpoint", index)

    def _maintain_journal(self, index: int) -> None:
        """Rotate and compact the journal inside fixed disk bounds.

        Runs after the checkpoint commits so the compaction floor sees the
        freshest ladder.  Both operations change physical layout only —
        logical offsets and ``read_bytes()`` over the retained range are
        untouched — so a crash at any point here recovers like a crash at
        the chunk boundary.
        """
        config = self.config
        if config.journal_rotate_bytes and self.journal.maybe_rotate(
            config.journal_rotate_bytes, faults=self.faults, chunk_index=index
        ):
            self.stats.journal_rotations += 1
        if not config.journal_compact_bytes:
            return
        sealed = sum(seg["nbytes"] for seg in self.journal.segments())
        if sealed < config.journal_compact_bytes:
            return
        floor = self._compaction_floor()
        if floor is None or floor <= self.journal.retained_from:
            return
        reclaimed = self.journal.compact(
            floor,
            seed_tally=self._make_tally(),
            faults=self.faults,
            chunk_index=index,
        )
        if reclaimed:
            self.stats.journal_compactions += 1
            self.stats.journal_bytes_compacted += reclaimed

    def _compaction_floor(self) -> Optional[int]:
        """Lowest journal offset any retained checkpoint could still need.

        Every rung may truncate to its ``journal_offset`` and replay its
        tally from ``snapshot_offset``; compaction must never eat either.
        A rung without a tally snapshot replays from offset zero and pins
        the floor there.
        """
        floor: Optional[int] = None
        for loaded in self.checkpointer.load_ladder():
            payload = loaded.payload
            if payload.get("fingerprint") != self._fingerprint:
                continue
            need = payload["journal_offset"]
            snapshot = payload["tally_digest"]["snapshot_offset"]
            need = 0 if snapshot is None else min(need, snapshot)
            floor = need if floor is None else min(floor, need)
        return floor

    # -- live mode --------------------------------------------------------------

    def _sync_ingest_stats(self) -> None:
        """Absolute overwrite from the source (replay-consistent; see stats)."""
        for key, value in self.source.ingest_stats().items():
            name = f"ingest_{key}"
            if hasattr(self.stats, name):
                setattr(self.stats, name, value)

    def _maintain_ingest(self, index: int) -> None:
        """Prune ingest state and maybe snapshot it, at a chunk boundary.

        Runs *before* chunk ``index`` is diagnosed so the cumulative
        eviction counter journalled with the chunk is path-independent:
        pruning is convergent (one prune at the current cut reaches the
        same state and the same cumulative counts as the sequence of
        per-boundary prunes a never-interrupted run performed), so a
        restart that re-ingested without intermediate prunes catches up
        with a single prune here and journals identical bytes.
        """
        source = self.source
        if not source.live:
            return
        if self._retain_chunks is not None:
            cut = (index - self._retain_chunks) * self.config.chunk_ns
            if cut > 0:
                source.prune_before(cut)
                self._sync_ingest_stats()
        every = self.config.ingest_checkpoint_every
        if (
            self.ingest_checkpointer is None
            or not every
            or index == 0
            or index % every
        ):
            return
        state = source.snapshot_state()
        if state is None:
            return  # transport can't report its position: full replay only
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "ingest",
            "fingerprint": self._ingest_fingerprint(),
            "next_chunk": index,
            "source": state,
        }
        # faults=None: the mid-checkpoint tear points belong to the service
        # ladder; the endurance suite crashes here via its own kill-point.
        self.ingest_checkpointer.save(payload, faults=None, chunk=index)
        self.stats.ingest_snapshots += 1
        self.stats.ingest_snapshot_bytes = self.ingest_checkpointer.last_nbytes
        if self.faults is not None:
            self.faults.kill("after-ingest-snapshot", index)

    def _run_live(self, next_chunk: int) -> int:
        """Pump the source and diagnose chunks as the barrier seals them.

        On resume (``next_chunk > 0``) the source re-ingests from the
        transport's beginning — deterministically, since transports and
        fault schedules are seeded — and already-journalled chunks are
        simply skipped as they re-seal; only chunks from ``next_chunk`` on
        are diagnosed and journalled, so no sealed chunk is ever
        duplicated or lost.

        The ingest kill-points use the next-chunk-to-diagnose as their
        chunk coordinate (they fire between chunks, not inside one).
        """
        source = self.source
        faults = self.faults
        processed = next_chunk
        while True:
            self._check_stop()
            if faults is not None:
                faults.kill("ingest-pump", processed)
            source.pump()
            if faults is not None:
                faults.kill("ingest-apply", processed)
            self._sync_ingest_stats()
            # Clock kill-points: fire when this pump advanced a clock
            # model or detected a fault — the crash lands between the
            # model update and the chunk commit, the exact window the
            # snapshot ladder must make invisible.
            if self.stats.ingest_clock_updates > self._clock_updates_seen:
                self._clock_updates_seen = self.stats.ingest_clock_updates
                if faults is not None:
                    faults.kill("clock-update", processed)
            if self.stats.ingest_clock_faults > self._clock_faults_seen:
                self._clock_faults_seen = self.stats.ingest_clock_faults
                if faults is not None:
                    faults.kill("clock-fault", processed)
            while processed < source.sealed_through():
                index = processed
                if faults is not None:
                    faults.kill("after-seal", index)
                # Boundary maintenance first: prune state no future chunk
                # can touch (and maybe snapshot the ingest side), so the
                # eviction counter journalled below is already current.
                self._maintain_ingest(index)
                # The trace grew since the last chunk: re-select victims
                # (prefix-stable, so old chunks' victims never change) and
                # re-open a fresh engine over the current trace contents.
                self.stream.refresh_victims()
                self.stream.open(index, generation=index)
                self._worker_failures_seen = 0
                self._worker_timeouts_seen = 0
                self._process_chunk(
                    index,
                    ingest_sheds=source.sheds_for_chunk(index),
                    ingest_evictions=self.stats.ingest_evictions,
                )
                processed += 1
            if source.exhausted() and processed >= source.final_chunks():
                return source.final_chunks()

    # -- entry point ------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Process every remaining chunk; resume from checkpoints first."""
        next_chunk = self._restore()
        if self.source.live:
            n_chunks = self._run_live(next_chunk)
        else:
            n_chunks = self.stream.n_chunks()
            if next_chunk < n_chunks:
                self.stream.open(next_chunk, generation=next_chunk)
                self._worker_failures_seen = 0
                self._worker_timeouts_seen = 0
                for index in range(next_chunk, n_chunks):
                    self._process_chunk(index)
        return ServiceReport(
            diagnoses=self.journal.diagnoses(),
            tally=self.tally,
            stats=self.stats,
            n_chunks=n_chunks,
        )
