"""Microscope: queue-based performance diagnosis for network functions.

A full reproduction of Gong et al., SIGCOMM 2020, on a simulated NFV
substrate.  Public API layers:

* :mod:`repro.nfv` — discrete-event NFV simulator (the DPDK-testbed stand-in),
* :mod:`repro.traffic` — CAIDA-like traffic generation and shaping,
* :mod:`repro.collector` — runtime record collection, compression, and
  IPID-based trace reconstruction,
* :mod:`repro.core` — the Microscope diagnosis engine (queuing periods,
  Si/Sp scores, propagation, recursion, victims, reports),
* :mod:`repro.aggregation` — AutoFocus-style causal-pattern aggregation,
* :mod:`repro.baselines` — NetMedic, naive correlation, PerfSight,
* :mod:`repro.experiments` — the paper's evaluation scenarios end to end.

Quickstart::

    from repro import quick_diagnose
    report = quick_diagnose()   # runs a small chain, prints top culprits
"""

from repro.core import (
    CausalRelation,
    Culprit,
    DiagTrace,
    MicroscopeEngine,
    Victim,
    VictimDiagnosis,
    VictimSelector,
    causal_relations,
    format_ranking,
    ranked_entities,
)
from repro.errors import (
    AggregationError,
    CheckpointError,
    StorageError,
    ConfigurationError,
    DiagnosisError,
    ReconstructionError,
    ReproError,
    ServiceError,
    SimulationError,
    TopologyError,
    TraceError,
    TransientError,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "CausalRelation",
    "CheckpointError",
    "StorageError",
    "ConfigurationError",
    "Culprit",
    "DiagTrace",
    "DiagnosisError",
    "MicroscopeEngine",
    "ReconstructionError",
    "ReproError",
    "ServiceError",
    "SimulationError",
    "TopologyError",
    "TraceError",
    "TransientError",
    "Victim",
    "VictimDiagnosis",
    "VictimSelector",
    "causal_relations",
    "format_ranking",
    "quick_diagnose",
    "ranked_entities",
    "__version__",
]


def quick_diagnose(seed: int = 0, verbose: bool = True) -> "VictimDiagnosis":
    """Tiny end-to-end demo: inject an interrupt, diagnose a victim.

    Builds a NAT -> VPN chain, sends steady traffic plus a direct probe
    flow, stalls the NAT for 800 us, picks the worst-latency victim at the
    VPN and returns its diagnosis (printing the ranked culprits when
    ``verbose``).
    """
    from repro.nfv import (
        InterruptInjector,
        InterruptSpec,
        Nat,
        Simulator,
        Topology,
        TrafficSource,
        Vpn,
        constant_target,
    )
    from repro.nfv.packet import FiveTuple
    from repro.traffic import IpidSpace, PidAllocator, constant_rate_flow
    from repro.util import MSEC, USEC, substream

    topo = Topology()
    topo.add_nf(Nat("nat1", router=lambda p: "vpn1"))
    topo.add_nf(Vpn("vpn1", router=lambda p: None))
    topo.add_source("src-main")
    topo.add_source("src-probe")
    topo.connect("src-main", "nat1")
    topo.connect("nat1", "vpn1")
    topo.connect("src-probe", "vpn1")

    pids = PidAllocator()
    ipids = IpidSpace(substream(seed, "quickstart"))
    main_flow = FiveTuple.of("10.1.0.1", "20.1.0.1", 1111, 80)
    probe_flow = FiveTuple.of("50.0.0.1", "60.0.0.1", 5555, 443)
    main = constant_rate_flow(main_flow, 1_000_000, 5 * MSEC, pids, ipids)
    probe = constant_rate_flow(probe_flow, 200_000, 5 * MSEC, pids, ipids)
    result = Simulator(
        topo,
        [
            TrafficSource("src-main", main, constant_target("nat1")),
            TrafficSource("src-probe", probe, constant_target("vpn1")),
        ],
        injectors=[InterruptInjector([InterruptSpec("nat1", 500 * USEC, 800 * USEC)])],
    ).run()

    trace = DiagTrace.from_sim_result(result)
    victims = VictimSelector(trace).hop_latency_victims(pct=99.9, nf="vpn1")
    engine = MicroscopeEngine(trace)
    diagnosis = engine.diagnose(max(victims, key=lambda v: v.metric))
    if verbose:
        print("Victim packet", diagnosis.victim.pid, "at", diagnosis.victim.nf)
        print(format_ranking(ranked_entities(diagnosis, trace)))
    return diagnosis
