"""Cross-server clock alignment for collected records (section 7).

"When running NFs in different machines, we need to align the timestamp of
data from different machines.  This needs clock synchronization
(microsecond level), which is already supported in PTP and Huygens."

The simulator's clock is global, so multi-server deployments are modelled
by *skewing* each server's records after collection; this module then
recovers the offsets the way coded-probe-free estimators (Huygens-style)
do: every matched (TX at u, RX at v) record pair satisfies

    rx_local - tx_local = propagation + queueing + (offset_v - offset_u)

and queueing is non-negative, so the *minimum* observed difference on an
edge, minus the known propagation delay, estimates ``offset_v - offset_u``.
Offsets are then propagated from a reference node over a spanning tree of
the NF graph, and applied to produce aligned records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collector.reconstruct import EdgeSpec
from repro.collector.runtime import (
    BatchRecord,
    CollectedData,
    ExitRecord,
    NFRecords,
    SourceRecord,
)
from repro.errors import TraceError
from repro.time.model import fit_lower_envelope


@dataclass(frozen=True)
class ClockSkew:
    """A server clock: local = true + offset (drift is out of scope)."""

    offset_ns: int

    def to_local(self, true_ns: int) -> int:
        return true_ns + self.offset_ns

    def to_true(self, local_ns: int) -> int:
        return local_ns - self.offset_ns


def apply_clock_skew(
    data: CollectedData, node_clocks: Dict[str, ClockSkew]
) -> CollectedData:
    """Return a copy of ``data`` with each node's records in local time.

    Nodes absent from ``node_clocks`` are assumed synchronised (offset 0).
    """
    skewed = CollectedData(nfs={}, sources={}, exits=[], max_batch=data.max_batch)
    for name, records in data.nfs.items():
        clock = node_clocks.get(name, ClockSkew(0))
        skewed.nfs[name] = NFRecords(
            rx=[
                BatchRecord(time_ns=clock.to_local(b.time_ns), ipids=b.ipids)
                for b in records.rx
            ],
            tx={
                next_node: [
                    BatchRecord(time_ns=clock.to_local(b.time_ns), ipids=b.ipids)
                    for b in batches
                ]
                for next_node, batches in records.tx.items()
            },
        )
    for name, records in data.sources.items():
        clock = node_clocks.get(name, ClockSkew(0))
        skewed.sources[name] = [
            SourceRecord(
                time_ns=clock.to_local(r.time_ns),
                ipid=r.ipid,
                flow=r.flow,
                target=r.target,
            )
            for r in records
        ]
    for record in data.exits:
        clock = node_clocks.get(record.last_nf, ClockSkew(0))
        skewed.exits.append(
            ExitRecord(
                time_ns=clock.to_local(record.time_ns),
                ipid=record.ipid,
                flow=record.flow,
                last_nf=record.last_nf,
            )
        )
    skewed.exits.sort(key=lambda r: r.time_ns)
    return skewed


def _matched_diffs(
    data: CollectedData, edge: EdgeSpec
) -> List[Tuple[int, int]]:
    """Per-match ``(tx_time, rx_time - tx_time)`` pairs along an edge.

    Uses the per-IPID nearest-candidate heuristic: for each TX record, the
    closest RX records at the destination with the same IPID bound the
    one-way delay.  IPID collisions across hosts create occasional *false*
    matches with arbitrary differences; callers must tolerate them.
    """
    src_items: List[Tuple[int, int]] = []  # (time, ipid)
    if edge.src in data.sources:
        src_items = [
            (r.time_ns, r.ipid) for r in data.sources[edge.src] if r.target == edge.dst
        ]
    else:
        records = data.nfs.get(edge.src)
        if records is not None:
            src_items = [
                (b.time_ns, ipid)
                for b in records.tx_to(edge.dst)
                for ipid in b.ipids
            ]
    dst_records = data.nfs.get(edge.dst)
    if not src_items or dst_records is None:
        return []
    # Index destination RX by ipid -> sorted times.
    rx_by_ipid: Dict[int, List[int]] = {}
    for batch in dst_records.rx:
        for ipid in batch.ipids:
            rx_by_ipid.setdefault(ipid, []).append(batch.time_ns)
    import bisect

    matches: List[Tuple[int, int]] = []
    for tx_time, ipid in src_items:
        times = rx_by_ipid.get(ipid)
        if not times:
            continue
        idx = bisect.bisect_left(times, tx_time)
        candidates = [
            times[j] - tx_time for j in (idx - 1, idx, idx + 1) if 0 <= j < len(times)
        ]
        if candidates:
            matches.append((tx_time, min(candidates, key=abs)))
    return matches


def _cluster_lower_edge(diffs: List[int]) -> int:
    """Lower edge of the densest cluster of sorted differences.

    True matches pile up just above delay + offset (empty-queue
    forwardings are common) while false IPID matches scatter arbitrarily,
    so a plain minimum is not robust; the densest 200 us cluster isolates
    the true matches and its 10th-percentile edge shrugs off a stray false
    match sitting just below the pile.
    """
    window_ns = 200_000
    best_count = 0
    best_span = (0, 0)
    hi = 0
    for lo in range(len(diffs)):
        if hi < lo:
            hi = lo
        while hi + 1 < len(diffs) and diffs[hi + 1] - diffs[lo] <= window_ns:
            hi += 1
        count = hi - lo + 1
        if count > best_count:
            best_count = count
            best_span = (lo, hi)
    lo, hi = best_span
    return diffs[lo + (hi - lo) // 10]


def _edge_offset_estimate(
    data: CollectedData, edge: EdgeSpec
) -> Optional[int]:
    """Estimate offset(dst) - offset(src) from matched min edge delay.

    Uses the per-IPID earliest-match heuristic: for each TX record, the
    first later RX record at the destination with the same IPID bounds the
    one-way delay from below.  The minimum over all pairs cancels queueing.
    """
    diffs = sorted(d for _, d in _matched_diffs(data, edge))
    if not diffs:
        return None
    return _cluster_lower_edge(diffs) - edge.delay_ns


@dataclass(frozen=True)
class DriftEstimate:
    """Offset *and* drift of dst's clock relative to src's, from one edge.

    The static :func:`_edge_offset_estimate` collapses a whole capture to
    one number, which under relative drift is an average over the capture
    span; this fits a line through per-window envelope minima instead (the
    same :func:`repro.time.model.fit_lower_envelope` the online ingest
    models use), recovering the offset at the capture's live edge plus the
    drift rate and a max-residual uncertainty bound.
    """

    src: str
    dst: str
    #: Reference time (newest window minimum, TX-local nanoseconds).
    t_ref_ns: int
    #: offset(dst) - offset(src) at ``t_ref_ns``, propagation removed.
    offset_ns: float
    drift_ppm: float
    #: Largest deviation of any window minimum from the fitted line.
    residual_ns: float
    windows: int
    samples: int

    def offset_at(self, t_ns: int) -> float:
        return self.offset_ns + (t_ns - self.t_ref_ns) * self.drift_ppm / 1e6


def estimate_edge_drift(
    data: CollectedData,
    edge: EdgeSpec,
    window_ns: int = 1_000_000,
    slack_ns: int = 1_000_000,
) -> Optional[DriftEstimate]:
    """Fit offset + drift for one edge from windowed envelope minima.

    Matches records as :func:`_edge_offset_estimate` does, drops false
    IPID matches further than ``slack_ns`` from the densest-cluster edge
    (the band must cover the drift excursion over the capture: the 1 ms
    default absorbs +/-1000 ppm over a one-second capture), then takes the
    minimum difference per ``window_ns`` of TX time and least-squares fits
    the minima.  Returns ``None`` when nothing matches.
    """
    if window_ns <= 0:
        raise TraceError("window_ns must be positive")
    matches = _matched_diffs(data, edge)
    if not matches:
        return None
    base = _cluster_lower_edge(sorted(d for _, d in matches))
    kept = [
        (t, d) for t, d in matches if base - slack_ns <= d <= base + slack_ns
    ]
    if not kept:
        return None
    minima: Dict[int, Tuple[int, int]] = {}
    for t, d in kept:
        bucket = t // window_ns
        current = minima.get(bucket)
        if current is None or d < current[1]:
            minima[bucket] = (t, d)
    points = [minima[bucket] for bucket in sorted(minima)]
    t_ref, intercept, drift_ppm, residual = fit_lower_envelope(
        [(t, float(d)) for t, d in points]
    )
    return DriftEstimate(
        src=edge.src,
        dst=edge.dst,
        t_ref_ns=t_ref,
        offset_ns=intercept - edge.delay_ns,
        drift_ppm=drift_ppm,
        residual_ns=residual,
        windows=len(points),
        samples=len(kept),
    )


@dataclass
class ClockAlignment:
    """Recovered per-node offsets relative to a reference node."""

    reference: str
    offsets_ns: Dict[str, int] = field(default_factory=dict)

    def correction_for(self, node: str) -> int:
        return self.offsets_ns.get(node, 0)


def estimate_offsets(
    data: CollectedData,
    edges: Sequence[EdgeSpec],
    reference: str,
    require_connected: bool = False,
) -> ClockAlignment:
    """Recover per-node clock offsets from edge records.

    Builds a spanning tree over the (undirected) edge graph rooted at
    ``reference`` and accumulates pairwise estimates.  Nodes unreachable
    from the reference keep offset 0 (and a missing-edge estimate leaves
    its subtree unaligned rather than failing the whole pass) — unless
    ``require_connected`` is set, in which case any node named by an edge
    that the spanning tree cannot reach raises :class:`TraceError`
    instead of silently staying in its own time domain.
    """
    pair: Dict[Tuple[str, str], Optional[int]] = {}
    for edge in edges:
        pair[(edge.src, edge.dst)] = _edge_offset_estimate(data, edge)

    neighbours: Dict[str, List[Tuple[str, int, bool]]] = {}
    for (src, dst), estimate in pair.items():
        if estimate is None:
            continue
        neighbours.setdefault(src, []).append((dst, estimate, True))
        neighbours.setdefault(dst, []).append((src, estimate, False))

    alignment = ClockAlignment(reference=reference, offsets_ns={reference: 0})
    frontier = [reference]
    while frontier:
        current = frontier.pop()
        base = alignment.offsets_ns[current]
        for other, estimate, forward in neighbours.get(current, []):
            if other in alignment.offsets_ns:
                continue
            # estimate = offset(dst) - offset(src)
            alignment.offsets_ns[other] = base + estimate if forward else base - estimate
            frontier.append(other)
    if require_connected:
        nodes = {reference}
        for edge in edges:
            nodes.add(edge.src)
            nodes.add(edge.dst)
        unreachable = sorted(nodes - alignment.offsets_ns.keys())
        if unreachable:
            raise TraceError(
                "clock alignment cannot reach: " + ", ".join(unreachable)
            )
    return alignment


def align_records(data: CollectedData, alignment: ClockAlignment) -> CollectedData:
    """Rewrite all records into the reference clock."""
    clocks = {
        node: ClockSkew(offset_ns=-offset)
        for node, offset in alignment.offsets_ns.items()
    }
    return apply_clock_skew(data, clocks)
