"""Telemetry-health accounting for degraded collection (robustness pass).

The paper's offline stage assumes every collector shipped complete,
ordered, clock-aligned records.  Real telemetry arrives lossy: collectors
crash, shared-memory rings overwrite unread batches, links drop dumper
traffic.  Rather than aborting (or silently mis-attributing), the tolerant
pipeline makes degradation *explicit*:

* a :class:`TelemetryGap` marks a region of one NF's record streams that
  is known (or inferred) to be incomplete, instead of raising
  :class:`~repro.errors.TraceError`;
* a :class:`TelemetryHealth` summarises a whole reconstruction pass —
  per-NF completeness ratios, quarantined NFs whose streams failed
  validation, and the gap list — and travels with the
  :class:`~repro.core.records.DiagTrace` into diagnosis, where it
  discounts culprit confidence.

``TelemetryHealth`` attached to a trace is the signal that the pipeline
runs in tolerant mode; ``trace.telemetry is None`` keeps every legacy
strict behaviour (and bit-identical output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import TraceError

#: Gap kinds recorded by the tolerant reconstructor.
GAP_KINDS = ("loss", "reorder", "quarantine", "chain-break", "clock")


@dataclass(frozen=True)
class TelemetryGap:
    """One region of one NF's telemetry known to be incomplete.

    ``kind`` says why: ``'loss'`` (records the upstream writers sent never
    showed up in the NF's streams), ``'reorder'`` (timestamps arrived out
    of order and were re-sorted), ``'quarantine'`` (the whole stream
    failed validation and was excluded), ``'chain-break'`` (packet chains
    could not be followed through this NF), ``'clock'`` (the NF's clock
    faulted — stepped, froze, or drifted out of bounds — so timestamps in
    this region are repaired estimates).  ``count`` is the number of
    affected records (0 when unknown).
    """

    nf: str
    start_ns: int
    end_ns: int
    kind: str
    count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in GAP_KINDS:
            raise TraceError(f"unknown telemetry gap kind {self.kind!r}")
        if self.end_ns < self.start_ns:
            raise TraceError(
                f"telemetry gap ends before it starts: "
                f"[{self.start_ns}, {self.end_ns}]"
            )


@dataclass
class TelemetryHealth:
    """Per-NF telemetry quality for one reconstruction pass.

    ``completeness`` maps each NF to the fraction of records the matching
    expected that actually arrived (1.0 = everything matched).  Inferred
    *packet* drops at a congested queue also depress completeness — the
    collector cannot tell a lost packet from a lost record — so on a
    healthy run with real drops completeness reads slightly below 1.0;
    diagnosis treats both the same way (less evidence, lower confidence).
    ``quarantined`` NFs failed stream validation outright and contributed
    no records; their confidence is 0.

    ``retention`` maps each NF to the fraction of its (estimated) true
    traffic that survived into the reconstructed trace as hops.  It is
    usually *lower* than ``completeness``: a record lost anywhere along a
    packet's chain removes the whole packet from the trace, so the trace
    is a thinner sample of reality than any single NF's record loss
    suggests.  Diagnosis uses it to rescale peak rates into sampled
    units (completeness keeps driving confidence).
    """

    completeness: Dict[str, float] = field(default_factory=dict)
    quarantined: Set[str] = field(default_factory=set)
    gaps: List[TelemetryGap] = field(default_factory=list)
    retention: Dict[str, float] = field(default_factory=dict)
    #: Multiplicative discount from clock faults (absent NF = 1.0).
    #: Kept separate from ``completeness`` — a clock fault does not mean
    #: records went missing, it means their *timestamps* are repaired
    #: estimates; both discount confidence, only loss discounts retention.
    clock_confidence: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def perfect(cls) -> "TelemetryHealth":
        return cls()

    def nf_confidence(self, nf: str) -> float:
        """Evidence confidence for records collected at ``nf`` in [0, 1]."""
        if nf in self.quarantined:
            return 0.0
        return self.completeness.get(nf, 1.0) * self.clock_confidence.get(nf, 1.0)

    def nf_retention(self, nf: str) -> float:
        """Fraction of ``nf``'s true traffic present in the trace.

        Falls back to ``completeness`` when no retention was measured
        (e.g. a hand-built health object), and to 1.0 when neither is
        known.
        """
        if nf in self.quarantined:
            return 0.0
        value = self.retention.get(nf)
        if value is not None:
            return value
        return self.completeness.get(nf, 1.0)

    @property
    def min_completeness(self) -> float:
        """The weakest NF's confidence (1.0 on a fully healthy pass)."""
        if self.quarantined:
            return 0.0
        if not self.completeness and not self.clock_confidence:
            return 1.0
        nfs = set(self.completeness) | set(self.clock_confidence)
        return min(self.nf_confidence(nf) for nf in nfs)

    @property
    def degraded(self) -> bool:
        """True when any NF lost records, reordered, or was quarantined."""
        return bool(
            self.quarantined
            or self.gaps
            or any(value < 1.0 for value in self.completeness.values())
            or any(value < 1.0 for value in self.retention.values())
            or any(value < 1.0 for value in self.clock_confidence.values())
        )

    def gaps_at(self, nf: str) -> List[TelemetryGap]:
        return [gap for gap in self.gaps if gap.nf == nf]

    def gaps_in(self, start_ns: int, end_ns: int) -> List[TelemetryGap]:
        """Gaps intersecting the half-open window [start, end)."""
        return [
            gap
            for gap in self.gaps
            if gap.start_ns < end_ns and gap.end_ns >= start_ns
        ]

    def merge(self, other: "TelemetryHealth") -> "TelemetryHealth":
        """Combine two passes (worst completeness wins per NF)."""
        completeness = dict(self.completeness)
        for nf, value in other.completeness.items():
            completeness[nf] = min(value, completeness.get(nf, 1.0))
        retention = dict(self.retention)
        for nf, value in other.retention.items():
            retention[nf] = min(value, retention.get(nf, 1.0))
        clock_confidence = dict(self.clock_confidence)
        for nf, value in other.clock_confidence.items():
            clock_confidence[nf] = min(value, clock_confidence.get(nf, 1.0))
        return TelemetryHealth(
            completeness=completeness,
            quarantined=self.quarantined | other.quarantined,
            gaps=self.gaps + other.gaps,
            retention=retention,
            clock_confidence=clock_confidence,
        )
