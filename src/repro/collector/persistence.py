"""Persisting collected records to disk (the dumper's output format).

The paper's runtime collector writes to shared memory and a standalone
dumper stores records on disk for offline diagnosis.  This module defines
that on-disk layout: one file per record stream using the compressed codec
from :mod:`repro.collector.compression`, plus a small JSON manifest tying
them together.  ``save_collected`` / ``load_collected`` round-trip a whole
:class:`~repro.collector.runtime.CollectedData`, so collection and
diagnosis can run in separate processes (or days apart).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.collector.compression import (
    decode_batches,
    decode_exit_records,
    encode_batches,
    encode_exit_records,
)
from repro.collector.runtime import CollectedData, NFRecords, SourceRecord
from repro.errors import TraceError
from repro.nfv.packet import FiveTuple

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def _stream_filename(kind: str, node: str, peer: str = "") -> str:
    safe_node = node.replace("/", "_")
    safe_peer = peer.replace("/", "_") if peer else ""
    if kind == "rx":
        return f"rx__{safe_node}.bin"
    if kind == "tx":
        return f"tx__{safe_node}__{safe_peer or 'EXIT'}.bin"
    raise TraceError(f"unknown stream kind {kind!r}")


def save_collected(data: CollectedData, directory: Union[str, Path]) -> Path:
    """Write all record streams plus a manifest into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "max_batch": data.max_batch,
        "nfs": {},
        "sources": {},
        "exits": "exits.bin",
    }
    for name, records in data.nfs.items():
        entry: Dict[str, object] = {"rx": _stream_filename("rx", name), "tx": {}}
        (directory / entry["rx"]).write_bytes(encode_batches(records.rx))
        for peer, batches in records.tx.items():
            filename = _stream_filename("tx", name, peer)
            entry["tx"][peer] = filename
            (directory / filename).write_bytes(encode_batches(batches))
        manifest["nfs"][name] = entry
    for name, records in data.sources.items():
        filename = f"src__{name}.jsonl"
        manifest["sources"][name] = filename
        with (directory / filename).open("w") as handle:
            for record in records:
                handle.write(
                    json.dumps(
                        {
                            "t": record.time_ns,
                            "ipid": record.ipid,
                            "flow": record.flow.as_tuple(),
                            "target": record.target,
                        }
                    )
                    + "\n"
                )
    (directory / "exits.bin").write_bytes(encode_exit_records(data.exits))
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory / _MANIFEST


def load_collected(directory: Union[str, Path]) -> CollectedData:
    """Inverse of :func:`save_collected`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise TraceError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported collected-data format {manifest.get('format_version')!r}"
        )
    data = CollectedData(
        nfs={}, sources={}, exits=[], max_batch=int(manifest["max_batch"])
    )
    for name, entry in manifest["nfs"].items():
        records = NFRecords()
        records.rx = decode_batches((directory / entry["rx"]).read_bytes())
        for peer, filename in entry["tx"].items():
            records.tx[peer] = decode_batches((directory / filename).read_bytes())
        data.nfs[name] = records
    for name, filename in manifest["sources"].items():
        records = []
        with (directory / filename).open() as handle:
            for line in handle:
                raw = json.loads(line)
                records.append(
                    SourceRecord(
                        time_ns=raw["t"],
                        ipid=raw["ipid"],
                        flow=FiveTuple(*raw["flow"]),
                        target=raw["target"],
                    )
                )
        data.sources[name] = records
    data.exits = decode_exit_records((directory / manifest["exits"]).read_bytes())
    return data
