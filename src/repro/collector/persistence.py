"""Persisting collected records to disk (the dumper's output format).

The paper's runtime collector writes to shared memory and a standalone
dumper stores records on disk for offline diagnosis.  This module defines
that on-disk layout: one file per record stream using the compressed codec
from :mod:`repro.collector.compression`, plus a small JSON manifest tying
them together.  ``save_collected`` / ``load_collected`` round-trip a whole
:class:`~repro.collector.runtime.CollectedData`, so collection and
diagnosis can run in separate processes (or days apart).

Crash-only discipline (format version 2): every file — streams and the
manifest — is written via temp + fsync + ``os.replace``, so a dumper killed
mid-write never leaves a torn file behind, only a complete old or new one
(plus ignorable ``*.tmp-*`` orphans).  The manifest records a CRC32 per
stream file; ``load_collected`` verifies each stream before decoding and a
corrupted or truncated file raises :class:`~repro.errors.TraceError`
*naming the file* instead of decoding garbage into the diagnosis.  Version
1 directories (no CRCs) still load.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

from repro.collector.compression import (
    decode_batches,
    decode_exit_records,
    encode_batches,
    encode_exit_records,
)
from repro.collector.runtime import CollectedData, NFRecords, SourceRecord
from repro.errors import TraceError
from repro.nfv.packet import FiveTuple
from repro.util.atomicio import atomic_write_bytes, atomic_write_text

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 2
_LOADABLE_VERSIONS = (1, 2)


def _stream_filename(kind: str, node: str, peer: str = "") -> str:
    safe_node = node.replace("/", "_")
    safe_peer = peer.replace("/", "_") if peer else ""
    if kind == "rx":
        return f"rx__{safe_node}.bin"
    if kind == "tx":
        return f"tx__{safe_node}__{safe_peer or 'EXIT'}.bin"
    raise TraceError(f"unknown stream kind {kind!r}")


def save_collected(
    data: CollectedData, directory: Union[str, Path], durable: bool = True
) -> Path:
    """Write all record streams plus a manifest into ``directory``.

    Every file lands atomically; the manifest (carrying each stream's
    CRC32) is written last, so a crashed save is indistinguishable from no
    save — the previous manifest, if any, still describes complete files.
    ``durable=False`` skips fsyncs (tests); atomicity is unaffected.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    crcs: Dict[str, int] = {}

    def write_stream(filename: str, payload: bytes) -> None:
        crcs[filename] = zlib.crc32(payload)
        atomic_write_bytes(directory / filename, payload, durable=durable)

    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "max_batch": data.max_batch,
        "nfs": {},
        "sources": {},
        "exits": "exits.bin",
    }
    for name, records in data.nfs.items():
        entry: Dict[str, object] = {"rx": _stream_filename("rx", name), "tx": {}}
        write_stream(entry["rx"], encode_batches(records.rx))
        for peer, batches in records.tx.items():
            filename = _stream_filename("tx", name, peer)
            entry["tx"][peer] = filename
            write_stream(filename, encode_batches(batches))
        manifest["nfs"][name] = entry
    for name, records in data.sources.items():
        filename = f"src__{name}.jsonl"
        manifest["sources"][name] = filename
        lines = []
        for record in records:
            lines.append(
                json.dumps(
                    {
                        "t": record.time_ns,
                        "ipid": record.ipid,
                        "flow": record.flow.as_tuple(),
                        "target": record.target,
                    }
                )
            )
        write_stream(filename, ("\n".join(lines) + "\n" if lines else "").encode())
    write_stream("exits.bin", encode_exit_records(data.exits))
    manifest["crc32"] = crcs
    atomic_write_text(
        directory / _MANIFEST, json.dumps(manifest, indent=2), durable=durable
    )
    return directory / _MANIFEST


def _read_stream(
    directory: Path, filename: str, crcs: Optional[Dict[str, int]]
) -> bytes:
    """Read one stream file, CRC-checked against the manifest when present."""
    path = directory / filename
    if not path.exists():
        raise TraceError(f"missing record stream {path}")
    payload = path.read_bytes()
    if crcs is not None and filename in crcs:
        actual = zlib.crc32(payload)
        if actual != crcs[filename]:
            raise TraceError(
                f"corrupted record stream {path}: crc32 {actual:#010x} != "
                f"manifest {crcs[filename]:#010x}"
            )
    return payload


def load_collected(directory: Union[str, Path]) -> CollectedData:
    """Inverse of :func:`save_collected`.

    Streams are CRC-verified against the manifest (format version 2) before
    decoding, and any decode failure is re-raised naming the offending
    file, so a truncated or bit-flipped dump fails loudly and precisely.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise TraceError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") not in _LOADABLE_VERSIONS:
        raise TraceError(
            f"unsupported collected-data format {manifest.get('format_version')!r}"
        )
    crcs = manifest.get("crc32")
    data = CollectedData(
        nfs={}, sources={}, exits=[], max_batch=int(manifest["max_batch"])
    )

    def decode_stream(filename: str, decoder):
        payload = _read_stream(directory, filename, crcs)
        try:
            return decoder(payload)
        except TraceError as exc:
            raise TraceError(f"corrupt record stream {directory / filename}: {exc}") from exc

    for name, entry in manifest["nfs"].items():
        records = NFRecords()
        records.rx = decode_stream(entry["rx"], decode_batches)
        for peer, filename in entry["tx"].items():
            records.tx[peer] = decode_stream(filename, decode_batches)
        data.nfs[name] = records
    for name, filename in manifest["sources"].items():
        payload = _read_stream(directory, filename, crcs)
        records = []
        for lineno, line in enumerate(payload.decode("utf-8").splitlines(), 1):
            if not line:
                continue
            try:
                raw = json.loads(line)
                records.append(
                    SourceRecord(
                        time_ns=raw["t"],
                        ipid=raw["ipid"],
                        flow=FiveTuple(*raw["flow"]),
                        target=raw["target"],
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceError(
                    f"corrupt source record {directory / filename}:{lineno}: {exc}"
                ) from exc
        data.sources[name] = records
    data.exits = decode_stream(manifest["exits"], decode_exit_records)
    return data
