"""Telemetry fault injection: the collector-side twin of ``repro.nfv.faults``.

``repro.nfv.faults`` breaks the *data plane* (interrupts, buggy NFs) to
create ground-truth performance problems; this module breaks the
*telemetry plane* to test how diagnosis behaves when collectors misbehave.
Faults are applied to an in-memory :class:`~repro.collector.runtime.
CollectedData` after collection, exactly where a lossy shared-memory ring,
a crashed dumper, or a skewed server clock would corrupt real records:

* **record drops** — individual per-packet records vanish from RX/TX
  batches (per-NF loss rates; the headline knob of the chaos soak),
* **batch truncation** — a batch's tail is cut (partial ring read),
* **duplication** — a whole batch is delivered twice (dumper retry),
* **reordering** — adjacent batches swap timestamps, breaking the
  time-sorted invariant every decoder and matcher assumes,
* **garbage** — IPIDs are replaced with random bytes (memory corruption),
* **clock drift** — an *unmodelled* per-NF linear drift, unlike the
  constant offsets :mod:`repro.collector.clock` knows how to recover,
* **clock schedules** — arbitrary per-NF clock trajectories (NTP steps
  backward or forward, frozen clocks, drift ramps) expressed as
  :class:`~repro.time.chaos.ClockSchedule`, the same pure warp the live
  ingestion chaos uses, so batch-mode and live-mode clock soaks share
  one fault vocabulary.

Everything is driven by seeded substreams (per NF, per fault class), so a
chaos run is exactly reproducible and adding a fault class never perturbs
the draws of another.  ``inject_chaos`` is pure: the input data is not
mutated and the returned :class:`ChaosReport` states precisely what was
injected, so soak tests can correlate injected damage with diagnosis
degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.collector.runtime import (
    BatchRecord,
    CollectedData,
    NFRecords,
    SourceRecord,
)
from repro.errors import ConfigurationError
from repro.time.chaos import ClockSchedule
from repro.util.rng import substream

_MAX_IPID = 65_535


@dataclass(frozen=True)
class ChaosConfig:
    """What to break, and how hard.

    Rates are probabilities in [0, 1]: ``drop_rate`` per record,
    ``truncate_rate``/``duplicate_rate``/``reorder_rate`` per batch,
    ``garbage_rate`` per record.  ``drop_rates`` overrides the global drop
    rate for named NFs (a single flaky collector).  ``drift_ppm`` applies
    an unmodelled linear clock drift to named NFs: a record at true time
    ``t`` is stamped ``t + t * ppm / 1e6``.  ``clock_schedules`` warps
    named NFs' batch timestamps through an arbitrary
    :class:`~repro.time.chaos.ClockSchedule` (NTP step, freeze, ramp) —
    applied after ``drift_ppm``, so both can compose.  ``seed`` fixes
    every draw.
    """

    drop_rate: float = 0.0
    drop_rates: Mapping[str, float] = field(default_factory=dict)
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    garbage_rate: float = 0.0
    drift_ppm: Mapping[str, float] = field(default_factory=dict)
    clock_schedules: Mapping[str, ClockSchedule] = field(default_factory=dict)
    #: Also drop source emission logs and exit records at ``drop_rate``
    #: (the generator's log and the exit NF's five-tuple records are
    #: telemetry too).
    affect_edges: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        rates = {
            "drop_rate": self.drop_rate,
            "truncate_rate": self.truncate_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
            "garbage_rate": self.garbage_rate,
            **{f"drop_rates[{nf}]": r for nf, r in self.drop_rates.items()},
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")

    def nf_drop_rate(self, nf: str) -> float:
        return self.drop_rates.get(nf, self.drop_rate)

    @property
    def active(self) -> bool:
        return bool(
            self.drop_rate
            or self.drop_rates
            or self.truncate_rate
            or self.duplicate_rate
            or self.reorder_rate
            or self.garbage_rate
            or self.drift_ppm
            or self.clock_schedules
        )


@dataclass
class ChaosReport:
    """Exactly what ``inject_chaos`` did, per NF."""

    records_dropped: Dict[str, int] = field(default_factory=dict)
    batches_truncated: Dict[str, int] = field(default_factory=dict)
    batches_duplicated: Dict[str, int] = field(default_factory=dict)
    batches_reordered: Dict[str, int] = field(default_factory=dict)
    records_garbled: Dict[str, int] = field(default_factory=dict)
    drifted: Dict[str, float] = field(default_factory=dict)
    #: NF -> schedule kind (``step`` / ``freeze`` / ``ramp`` / ``drift``)
    #: for clock-schedule warps that actually changed a timestamp.
    clock_faulted: Dict[str, str] = field(default_factory=dict)
    source_records_dropped: int = 0
    exit_records_dropped: int = 0

    def _bump(self, counter: Dict[str, int], nf: str, by: int) -> None:
        if by:
            counter[nf] = counter.get(nf, 0) + by

    @property
    def total_dropped(self) -> int:
        return (
            sum(self.records_dropped.values())
            + self.source_records_dropped
            + self.exit_records_dropped
        )

    @property
    def touched_nfs(self) -> Tuple[str, ...]:
        names = set()
        for counter in (
            self.records_dropped,
            self.batches_truncated,
            self.batches_duplicated,
            self.batches_reordered,
            self.records_garbled,
        ):
            names.update(counter)
        names.update(self.drifted)
        names.update(self.clock_faulted)
        return tuple(sorted(names))


@dataclass
class ChaosResult:
    """Corrupted telemetry plus the injection ledger."""

    data: CollectedData
    report: ChaosReport


def _chaos_batches(
    batches: List[BatchRecord],
    nf: str,
    config: ChaosConfig,
    rng,
    report: ChaosReport,
) -> List[BatchRecord]:
    """Apply per-batch and per-record faults to one stream, in fault order
    drop -> garbage -> truncate -> duplicate -> reorder -> drift ->
    clock schedule."""
    drop = config.nf_drop_rate(nf)
    out: List[BatchRecord] = []
    for batch in batches:
        ipids = list(batch.ipids)
        if drop and ipids:
            keep = rng.random(len(ipids)) >= drop
            dropped = len(ipids) - int(keep.sum())
            if dropped:
                report._bump(report.records_dropped, nf, dropped)
                ipids = [ipid for ipid, k in zip(ipids, keep) if k]
        if config.garbage_rate and ipids:
            garble = rng.random(len(ipids)) < config.garbage_rate
            garbled = int(garble.sum())
            if garbled:
                report._bump(report.records_garbled, nf, garbled)
                ipids = [
                    int(rng.integers(0, _MAX_IPID + 1)) if g else ipid
                    for ipid, g in zip(ipids, garble)
                ]
        if config.truncate_rate and len(ipids) > 1:
            if rng.random() < config.truncate_rate:
                cut = int(rng.integers(1, len(ipids)))
                report._bump(
                    report.batches_truncated, nf, 1
                )
                report._bump(report.records_dropped, nf, len(ipids) - cut)
                ipids = ipids[:cut]
        record = BatchRecord(time_ns=batch.time_ns, ipids=tuple(ipids))
        out.append(record)
        if config.duplicate_rate and rng.random() < config.duplicate_rate:
            report._bump(report.batches_duplicated, nf, 1)
            out.append(record)
    if config.reorder_rate and len(out) > 1:
        for i in range(0, len(out) - 1, 2):
            if rng.random() < config.reorder_rate:
                a, b = out[i], out[i + 1]
                if a.time_ns != b.time_ns:
                    report._bump(report.batches_reordered, nf, 1)
                    out[i] = BatchRecord(time_ns=b.time_ns, ipids=a.ipids)
                    out[i + 1] = BatchRecord(time_ns=a.time_ns, ipids=b.ipids)
    ppm = config.drift_ppm.get(nf, 0.0)
    if ppm:
        report.drifted[nf] = ppm
        out = [
            BatchRecord(
                time_ns=b.time_ns + int(b.time_ns * ppm / 1e6), ipids=b.ipids
            )
            for b in out
        ]
    schedule = config.clock_schedules.get(nf)
    if schedule is not None:
        warped = [
            BatchRecord(time_ns=schedule.warp(b.time_ns), ipids=b.ipids)
            for b in out
        ]
        if any(w.time_ns != b.time_ns for w, b in zip(warped, out)):
            report.clock_faulted[nf] = schedule.kind
        out = warped
    return out


def inject_chaos(data: CollectedData, config: ChaosConfig) -> ChaosResult:
    """Return a corrupted copy of ``data`` plus the injection report.

    The input is never mutated.  Each (NF, stream) gets its own RNG
    substream keyed on the config seed, so per-NF damage is independent
    of collection order and of which other NFs exist.
    """
    report = ChaosReport()
    corrupted = CollectedData(
        nfs={}, sources={}, exits=[], max_batch=data.max_batch
    )
    for name, records in data.nfs.items():
        rng = substream(config.seed, f"chaos:nf:{name}")
        corrupted.nfs[name] = NFRecords(
            rx=_chaos_batches(records.rx, name, config, rng, report),
            tx={
                peer: _chaos_batches(batches, name, config, rng, report)
                for peer, batches in sorted(records.tx.items())
            },
        )
    for name, records in data.sources.items():
        kept: List[SourceRecord] = list(records)
        if config.affect_edges and records:
            rng = substream(config.seed, f"chaos:source:{name}")
            drop = config.nf_drop_rate(name)
            if drop:
                keep = rng.random(len(records)) >= drop
                kept = [r for r, k in zip(records, keep) if k]
                report.source_records_dropped += len(records) - len(kept)
        corrupted.sources[name] = kept
    corrupted.exits = list(data.exits)
    if config.affect_edges and data.exits and config.drop_rate:
        rng = substream(config.seed, "chaos:exits")
        keep = rng.random(len(data.exits)) >= config.drop_rate
        corrupted.exits = [r for r, k in zip(data.exits, keep) if k]
        report.exit_records_dropped += len(data.exits) - len(corrupted.exits)
    return ChaosResult(data=corrupted, report=report)


def _parse_clock_spec(spec: str) -> Tuple[str, ClockSchedule]:
    """One ``family:nf:value[@at_ns]`` clause of ``REPRO_CHAOS_CLOCK``.

    * ``drift:<nf>:<ppm>`` — constant rate error from t=0;
    * ``step:<nf>:<step_ns>@<at_ns>`` — NTP step (negative = backward);
    * ``freeze:<nf>:<duration_ns>@<at_ns>`` — clock pinned for a while
      (duration 0 = frozen forever).
    """
    try:
        family, nf, value = spec.split(":", 2)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad REPRO_CHAOS_CLOCK clause {spec!r}: want family:nf:value"
        ) from exc
    at_ns = 0
    if "@" in value:
        value, at = value.rsplit("@", 1)
        try:
            at_ns = int(at)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad REPRO_CHAOS_CLOCK start time {at!r} in {spec!r}"
            ) from exc
    try:
        if family == "drift":
            return nf, ClockSchedule(kind="drift", start_ns=at_ns, ppm=float(value))
        if family == "step":
            return nf, ClockSchedule(kind="step", start_ns=at_ns, step_ns=int(value))
        if family == "freeze":
            return nf, ClockSchedule(
                kind="freeze", start_ns=at_ns, freeze_ns=int(value)
            )
    except ValueError as exc:
        raise ConfigurationError(
            f"bad REPRO_CHAOS_CLOCK value {value!r} in {spec!r}"
        ) from exc
    raise ConfigurationError(
        f"unknown REPRO_CHAOS_CLOCK family {family!r} in {spec!r} "
        f"(want drift, step, or freeze)"
    )


def chaos_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[ChaosConfig]:
    """Build a config from ``REPRO_CHAOS_*`` variables, or None when unset.

    ``REPRO_CHAOS_LOSS`` (record drop rate, e.g. ``0.10``) or
    ``REPRO_CHAOS_CLOCK`` (comma-separated ``family:nf:value[@at_ns]``
    clauses, e.g. ``drift:nat1:400,step:vpn1:-1000000@2000000``)
    activates it; ``REPRO_CHAOS_SEED`` (default 0) fixes the draws.  CI
    uses this to run the degraded-telemetry suite under a fixed 10% loss
    and the clock soak under injected skew.
    """
    import os

    env = os.environ if environ is None else environ
    loss = env.get("REPRO_CHAOS_LOSS")
    clock = env.get("REPRO_CHAOS_CLOCK")
    if loss is None and clock is None:
        return None
    rate = 0.0
    if loss is not None:
        try:
            rate = float(loss)
        except ValueError as exc:
            raise ConfigurationError(f"bad REPRO_CHAOS_LOSS {loss!r}") from exc
    schedules: Dict[str, ClockSchedule] = {}
    if clock is not None:
        for spec in clock.split(","):
            spec = spec.strip()
            if not spec:
                continue
            nf, schedule = _parse_clock_spec(spec)
            schedules[nf] = schedule
    try:
        seed = int(env.get("REPRO_CHAOS_SEED", "0"))
    except ValueError as exc:
        raise ConfigurationError(
            f"bad REPRO_CHAOS_SEED {env.get('REPRO_CHAOS_SEED')!r}"
        ) from exc
    return ChaosConfig(drop_rate=rate, clock_schedules=schedules, seed=seed)
