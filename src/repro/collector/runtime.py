"""Runtime information collection (paper Table 1 and section 5).

The collector is an :class:`~repro.nfv.nf.NFHook` — the moral equivalent of
the 200 lines the authors added to DPDK's RX/TX burst functions.  Per NF it
records, for every batch read from the input queue and every batch written
towards a next hop:

* the batch timestamp,
* the batch size,
* the IPIDs of the packets in the batch (2 bytes each after compression).

Five-tuples are recorded only at the *edges* of the NF graph (traffic
sources and exit NFs); interior NFs carry IPIDs alone, and the
reconstruction module re-identifies packets across NFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.nfv.packet import FiveTuple, Packet


@dataclass(frozen=True)
class BatchRecord:
    """One RX or TX burst observed at an NF."""

    time_ns: int
    ipids: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.ipids)


@dataclass(frozen=True)
class SourceRecord:
    """One packet emission at a traffic source (the generator's own log)."""

    time_ns: int
    ipid: int
    flow: FiveTuple
    target: str


@dataclass(frozen=True)
class ExitRecord:
    """Five-tuple kept for a packet leaving the NF graph."""

    time_ns: int
    ipid: int
    flow: FiveTuple
    last_nf: str


@dataclass
class NFRecords:
    """All batches collected at one NF."""

    rx: List[BatchRecord] = field(default_factory=list)
    tx: Dict[str, List[BatchRecord]] = field(default_factory=dict)

    def tx_to(self, next_node: str) -> List[BatchRecord]:
        return self.tx.get(next_node, [])


@dataclass
class CollectedData:
    """Everything the runtime collector hands to offline diagnosis."""

    nfs: Dict[str, NFRecords] = field(default_factory=dict)
    sources: Dict[str, List[SourceRecord]] = field(default_factory=dict)
    exits: List[ExitRecord] = field(default_factory=list)
    max_batch: int = 32

    def nf(self, name: str) -> NFRecords:
        return self.nfs.setdefault(name, NFRecords())


class RuntimeCollector:
    """NF hook gathering Table-1 records during a simulation run.

    ``max_batch`` must match the NFs' burst size: a batch smaller than
    ``max_batch`` implies the queue was drained, which is how the offline
    stage detects queuing-period boundaries from compressed data alone.
    """

    def __init__(self, max_batch: int = 32) -> None:
        self.data = CollectedData(nfs={}, sources={}, exits=[], max_batch=max_batch)

    # -- NFHook interface ---------------------------------------------------

    def on_enqueue(self, nf: str, time_ns: int, packet: Packet, accepted: bool) -> None:
        # The real collector cannot see the downstream NIC queue admitting or
        # dropping packets; arrivals are inferred from upstream TX records.
        return

    def on_rx_batch(
        self, nf: str, time_ns: int, batch: Sequence[Tuple[Packet, int]]
    ) -> None:
        ipids = tuple(packet.ipid for packet, _enq in batch)
        self.data.nf(nf).rx.append(BatchRecord(time_ns=time_ns, ipids=ipids))

    def on_tx_batch(
        self, nf: str, next_node: str, time_ns: int, packets: Sequence[Packet]
    ) -> None:
        records = self.data.nf(nf)
        ipids = tuple(packet.ipid for packet in packets)
        records.tx.setdefault(next_node, []).append(
            BatchRecord(time_ns=time_ns, ipids=ipids)
        )
        if next_node == "":
            for packet in packets:
                self.data.exits.append(
                    ExitRecord(
                        time_ns=time_ns, ipid=packet.ipid, flow=packet.flow, last_nf=nf
                    )
                )

    # -- source-side hooks (called by the simulator) -------------------------

    def on_emit(self, source: str, time_ns: int, packet: Packet, target: str) -> None:
        # The traffic generator logs what it sent and where (MoonGen-style).
        self.data.sources.setdefault(source, []).append(
            SourceRecord(time_ns=time_ns, ipid=packet.ipid, flow=packet.flow, target=target)
        )

    def on_exit(self, last_nf: str, time_ns: int, packet: Packet) -> None:
        return

    # -- accounting -----------------------------------------------------------

    def record_counts(self) -> Dict[str, int]:
        """Number of per-packet records collected at each NF."""
        counts: Dict[str, int] = {}
        for name, records in self.data.nfs.items():
            n = sum(b.size for b in records.rx)
            n += sum(b.size for batches in records.tx.values() for b in batches)
            counts[name] = n
        return counts
