"""Runtime data collection, compression, storage, and trace reconstruction."""

from repro.collector.chaos import (
    ChaosConfig,
    ChaosReport,
    ChaosResult,
    chaos_from_env,
    inject_chaos,
)
from repro.collector.clock import (
    ClockAlignment,
    ClockSkew,
    DriftEstimate,
    align_records,
    apply_clock_skew,
    estimate_edge_drift,
    estimate_offsets,
)
from repro.collector.compression import (
    bytes_per_packet,
    decode_batches,
    decode_exit_records,
    decode_nf_records,
    encode_batches,
    encode_exit_records,
    encode_nf_records,
)
from repro.collector.overhead import (
    DEFAULT_PER_BATCH_NS,
    DEFAULT_PER_PACKET_NS,
    OverheadReport,
    apply_collection_cost,
    measure_overhead,
    measure_overhead_by_type,
)
from repro.collector.health import TelemetryGap, TelemetryHealth
from repro.collector.persistence import load_collected, save_collected
from repro.collector.reconstruct import (
    EdgeSpec,
    ReconstructedHop,
    ReconstructedPacket,
    ReconstructionStats,
    TraceReconstructor,
)
from repro.collector.runtime import (
    BatchRecord,
    CollectedData,
    ExitRecord,
    NFRecords,
    RuntimeCollector,
    SourceRecord,
)
from repro.collector.storage import DumperStats, SharedMemoryRing, drain_batches

__all__ = [
    "BatchRecord",
    "ChaosConfig",
    "ChaosReport",
    "ChaosResult",
    "chaos_from_env",
    "inject_chaos",
    "ClockAlignment",
    "ClockSkew",
    "DriftEstimate",
    "align_records",
    "apply_clock_skew",
    "estimate_edge_drift",
    "estimate_offsets",
    "CollectedData",
    "DEFAULT_PER_BATCH_NS",
    "DEFAULT_PER_PACKET_NS",
    "DumperStats",
    "EdgeSpec",
    "ExitRecord",
    "NFRecords",
    "OverheadReport",
    "ReconstructedHop",
    "ReconstructedPacket",
    "ReconstructionStats",
    "RuntimeCollector",
    "SharedMemoryRing",
    "SourceRecord",
    "TelemetryGap",
    "TelemetryHealth",
    "TraceReconstructor",
    "apply_collection_cost",
    "bytes_per_packet",
    "decode_batches",
    "decode_exit_records",
    "decode_nf_records",
    "drain_batches",
    "encode_batches",
    "encode_exit_records",
    "encode_nf_records",
    "load_collected",
    "save_collected",
    "measure_overhead",
    "measure_overhead_by_type",
]
