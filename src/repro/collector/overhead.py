"""Collector overhead model and measurement (section 6.2, runtime overhead).

The paper reports 0.88-2.33% peak-throughput degradation from the runtime
collector.  We model the collector's critical-path cost as a small fixed
cost per batch (one timestamp read + shared-memory header write) plus a
smaller per-packet cost (one 2-byte IPID store), then measure the resulting
peak-rate degradation by offline stress test with and without the costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.nfv.nf import NetworkFunction
from repro.nfv.simulator import calibrate_peak_rate

#: rdtsc + header write per batch (ns) — dominated by the timestamp.
DEFAULT_PER_BATCH_NS = 35
#: One 2-byte store into the shared-memory ring per packet, including the
#: occasional cache miss on the ring page (ns).
DEFAULT_PER_PACKET_NS = 6


@dataclass(frozen=True)
class OverheadReport:
    """Peak-throughput degradation from enabling collection at one NF."""

    nf_type: str
    baseline_pps: float
    collected_pps: float

    @property
    def degradation(self) -> float:
        """Fractional throughput loss, e.g. 0.015 for 1.5%."""
        if self.baseline_pps == 0:
            return 0.0
        return 1.0 - self.collected_pps / self.baseline_pps


def apply_collection_cost(
    nf: NetworkFunction,
    per_batch_ns: int = DEFAULT_PER_BATCH_NS,
    per_packet_ns: int = DEFAULT_PER_PACKET_NS,
) -> None:
    """Charge the collector's critical-path cost to an NF."""
    nf.per_batch_overhead_ns = per_batch_ns
    nf.per_packet_overhead_ns = per_packet_ns


def measure_overhead(
    nf_factory: Callable[[], NetworkFunction],
    per_batch_ns: int = DEFAULT_PER_BATCH_NS,
    per_packet_ns: int = DEFAULT_PER_PACKET_NS,
    n_packets: int = 4_096,
) -> OverheadReport:
    """Stress-test an NF with and without collection and compare peak rates."""
    baseline = calibrate_peak_rate(nf_factory, n_packets=n_packets)

    def with_collection() -> NetworkFunction:
        nf = nf_factory()
        apply_collection_cost(nf, per_batch_ns, per_packet_ns)
        return nf

    collected = calibrate_peak_rate(with_collection, n_packets=n_packets)
    sample = nf_factory()
    return OverheadReport(
        nf_type=sample.nf_type, baseline_pps=baseline, collected_pps=collected
    )


def measure_overhead_by_type(
    factories: Dict[str, Callable[[], NetworkFunction]],
    **kwargs: object,
) -> Dict[str, OverheadReport]:
    """Overhead per NF type — the paper's 0.88-2.33% table."""
    return {name: measure_overhead(factory, **kwargs) for name, factory in factories.items()}
