"""Wire format for collected records: ~2 bytes per packet (section 5).

The paper compresses runtime data to roughly two bytes per packet by
recording only IPIDs at interior NFs plus one timestamp and size per batch.
This module implements a concrete codec so the overhead claims are backed
by running code:

* per batch: varint timestamp delta + varint batch size,
* per packet: 2-byte little-endian IPID,
* exit records additionally carry the 13-byte five-tuple.

``encode_nf_records`` / ``decode_nf_records`` round-trip exactly; tests
assert both the fidelity and the bytes-per-packet budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.collector.runtime import BatchRecord, ExitRecord, NFRecords
from repro.errors import TraceError
from repro.nfv.packet import FiveTuple


def _varint_encode(value: int, out: bytearray) -> None:
    if value < 0:
        raise TraceError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _varint_decode(buf: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(buf):
            raise TraceError("truncated varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise TraceError("varint too long")


def encode_batches(batches: Iterable[BatchRecord]) -> bytes:
    """Encode a batch stream: delta timestamps, sizes, 2-byte IPIDs."""
    out = bytearray()
    previous = 0
    for batch in batches:
        delta = batch.time_ns - previous
        if delta < 0:
            raise TraceError("batch stream not time-sorted")
        previous = batch.time_ns
        _varint_encode(delta, out)
        _varint_encode(batch.size, out)
        for ipid in batch.ipids:
            out += ipid.to_bytes(2, "little")
    return bytes(out)


def decode_batches(buf: bytes) -> List[BatchRecord]:
    """Inverse of :func:`encode_batches`."""
    batches: List[BatchRecord] = []
    offset = 0
    time_ns = 0
    while offset < len(buf):
        delta, offset = _varint_decode(buf, offset)
        time_ns += delta
        size, offset = _varint_decode(buf, offset)
        if offset + 2 * size > len(buf):
            raise TraceError("truncated batch payload")
        ipids = tuple(
            int.from_bytes(buf[offset + 2 * i : offset + 2 * i + 2], "little")
            for i in range(size)
        )
        offset += 2 * size
        batches.append(BatchRecord(time_ns=time_ns, ipids=ipids))
    return batches


def encode_nf_records(records: NFRecords) -> Dict[str, bytes]:
    """Encode one NF's RX stream and each TX stream separately."""
    encoded = {"rx": encode_batches(records.rx)}
    for next_node, batches in records.tx.items():
        encoded[f"tx:{next_node}"] = encode_batches(batches)
    return encoded


def decode_nf_records(encoded: Dict[str, bytes]) -> NFRecords:
    """Inverse of :func:`encode_nf_records`."""
    records = NFRecords()
    for key, buf in encoded.items():
        if key == "rx":
            records.rx = decode_batches(buf)
        elif key.startswith("tx:"):
            records.tx[key[3:]] = decode_batches(buf)
        else:
            raise TraceError(f"unknown record stream {key!r}")
    return records


def encode_exit_records(exits: Iterable[ExitRecord]) -> bytes:
    """Exit records keep the five-tuple: 13 bytes plus timestamp delta."""
    out = bytearray()
    previous = 0
    for record in exits:
        delta = record.time_ns - previous
        if delta < 0:
            raise TraceError("exit stream not time-sorted")
        previous = record.time_ns
        _varint_encode(delta, out)
        out += record.ipid.to_bytes(2, "little")
        flow = record.flow
        out += flow.src_ip.to_bytes(4, "little")
        out += flow.dst_ip.to_bytes(4, "little")
        out += flow.src_port.to_bytes(2, "little")
        out += flow.dst_port.to_bytes(2, "little")
        out += flow.proto.to_bytes(1, "little")
        name = record.last_nf.encode("utf-8")
        _varint_encode(len(name), out)
        out += name
    return bytes(out)


def decode_exit_records(buf: bytes) -> List[ExitRecord]:
    """Inverse of :func:`encode_exit_records`."""
    exits: List[ExitRecord] = []
    offset = 0
    time_ns = 0
    while offset < len(buf):
        delta, offset = _varint_decode(buf, offset)
        time_ns += delta
        if offset + 15 > len(buf):
            raise TraceError("truncated exit record")
        ipid = int.from_bytes(buf[offset : offset + 2], "little")
        offset += 2
        src_ip = int.from_bytes(buf[offset : offset + 4], "little")
        dst_ip = int.from_bytes(buf[offset + 4 : offset + 8], "little")
        src_port = int.from_bytes(buf[offset + 8 : offset + 10], "little")
        dst_port = int.from_bytes(buf[offset + 10 : offset + 12], "little")
        proto = buf[offset + 12]
        offset += 13
        name_len, offset = _varint_decode(buf, offset)
        if offset + name_len > len(buf):
            raise TraceError("truncated exit record NF name")
        try:
            last_nf = buf[offset : offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            # Garbage bytes must surface as the codec's own error class,
            # not leak the underlying decode exception to callers.
            raise TraceError(f"corrupt exit record NF name: {exc}") from exc
        offset += name_len
        exits.append(
            ExitRecord(
                time_ns=time_ns,
                ipid=ipid,
                flow=FiveTuple(src_ip, dst_ip, src_port, dst_port, proto),
                last_nf=last_nf,
            )
        )
    return exits


def bytes_per_packet(records: NFRecords) -> float:
    """Measured collection footprint at an interior NF, bytes per packet."""
    encoded = encode_nf_records(records)
    total_bytes = sum(len(buf) for buf in encoded.values())
    total_packets = sum(b.size for b in records.rx)
    total_packets += sum(b.size for batches in records.tx.values() for b in batches)
    if total_packets == 0:
        return 0.0
    return total_bytes / total_packets
