"""Packet-trace reconstruction from compressed records (section 5, Fig. 9).

Interior NFs record only IPIDs, so the same packet must be re-identified
across NFs.  Three side channels resolve IPID collisions:

1. **Paths** — a packet at NF ``f`` can only have come from ``f``'s
   immediate upstream writers, so matching walks one edge at a time.
2. **Timing** — a packet is read after it arrived and within a bounded
   queueing delay, so only writer records inside the delay window are
   candidates.
3. **Order** — each writer's packets enter the downstream FIFO in write
   order, so candidate choices that break per-writer order are rejected;
   when two writers' heads both match, bounded lookahead picks the choice
   that keeps the rest of the stream consistent (the Figure 9 argument).

Reconstruction proceeds per NF in two matchings:

* **queue matching**: the NF's RX stream is an interleaving of its writers'
  arrival streams (upstream TX records shifted by edge propagation delay,
  plus traffic-source emission logs).  Unmatched writer items are inferred
  drops at the NF's input queue.
* **demux matching**: the NF's RX stream fans out into its per-next-hop TX
  streams; each RX item maps to at most one TX item (none when the NF
  itself consumed the packet, e.g. a firewall drop rule).

Chaining the matchings backwards from the exit records (which carry
five-tuples) yields full per-packet hop timelines.

**Tolerant mode** (``tolerant=True``) handles degraded telemetry instead
of letting it poison the matchings: per-NF streams are validated first
(out-of-order batches are re-sorted; streams whose disorder exceeds
``max_disorder`` are quarantined and treated like a crashed collector),
and every form of damage — losses inferred by the matcher, repaired
reorderings, quarantines, broken chains — is recorded as explicit
:class:`~repro.collector.health.TelemetryGap` markers in ``self.health``
together with per-NF completeness ratios.  Diagnosis consumes that
:class:`~repro.collector.health.TelemetryHealth` to discount culprit
confidence.  On clean input tolerant mode is bit-identical to strict
mode (validation finds nothing to repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collector.health import TelemetryGap, TelemetryHealth
from repro.collector.runtime import CollectedData, NFRecords
from repro.errors import ReconstructionError

#: Default upper bound on (read - arrival): DPDK ring of 1024 packets at a
#: slow NF.  Generous on purpose; timing only needs to prune far-away
#: records.
DEFAULT_MAX_WAIT_NS = 50_000_000


@dataclass(frozen=True)
class _Item:
    """One per-packet record in a stream (arrival, read, or departure)."""

    time_ns: int
    ipid: int


@dataclass
class EdgeSpec:
    """Static topology knowledge the reconstructor is given."""

    src: str
    dst: str
    delay_ns: int


@dataclass
class ReconstructedHop:
    """Timing of one reconstructed packet at one NF."""

    nf: str
    arrival_ns: int
    read_ns: int
    depart_ns: int


@dataclass
class ReconstructedPacket:
    """One packet journey rebuilt from compressed records."""

    flow: object
    source: str
    emitted_ns: int
    hops: List[ReconstructedHop] = field(default_factory=list)
    exited_ns: int = -1
    dropped_at: Optional[str] = None

    def nf_path(self) -> Tuple[str, ...]:
        return tuple(hop.nf for hop in self.hops)


@dataclass
class ReconstructionStats:
    """Quality accounting for a reconstruction pass."""

    matched: int = 0
    ambiguous_resolved: int = 0
    unmatched_rx: int = 0
    inferred_drops: int = 0
    chains_built: int = 0
    chains_broken: int = 0


class _StreamMatcher:
    """Greedy order-preserving matcher with drop skips and lookahead.

    Matches a merged sequence against K ordered component streams.  For each
    merged item, the candidate set is, per stream, the first not-yet-matched
    item with the same ipid inside the time window (items skipped over are
    treated as losses).  Ties between streams are broken by (fewest skips,
    earliest time); remaining ties use bounded lookahead over the next
    merged items.
    """

    def __init__(
        self,
        merged: Sequence[Tuple[int, int]],
        streams: Dict[str, List[_Item]],
        window_ok,
        lookahead: int = 4,
        max_skip: int = 64,
    ) -> None:
        self.merged = merged
        self.streams = streams
        self.window_ok = window_ok
        self.lookahead = lookahead
        self.max_skip = max_skip
        self.pointers: Dict[str, int] = {key: 0 for key in streams}
        self.assignment: List[Optional[Tuple[str, int]]] = [None] * len(merged)
        self.stats_ambiguous = 0
        self.stats_unmatched = 0

    def _candidates(
        self, merged_time: int, ipid: int, pointers: Dict[str, int]
    ) -> List[Tuple[int, int, str, int]]:
        """Return (skips, time, stream, index) candidates, best first."""
        found: List[Tuple[int, int, str, int]] = []
        for key, stream in self.streams.items():
            idx = pointers[key]
            skips = 0
            while idx < len(stream) and skips <= self.max_skip:
                item = stream[idx]
                if not self.window_ok(item.time_ns, merged_time):
                    if item.time_ns > merged_time:
                        break  # this and later items are too new
                    # Item too old to ever match a later merged item? It can
                    # still match later merged items (window grows), so only
                    # skip it for this merged item.
                    idx += 1
                    skips += 1
                    continue
                if item.ipid == ipid:
                    found.append((skips, item.time_ns, key, idx))
                    break
                idx += 1
                skips += 1
        found.sort()
        return found

    def _try_match(self, start: int, pointers: Dict[str, int], depth: int) -> bool:
        """Can merged[start:start+depth] be matched from ``pointers``?"""
        if depth == 0 or start >= len(self.merged):
            return True
        merged_time, ipid = self.merged[start]
        candidates = self._candidates(merged_time, ipid, pointers)
        for _skips, _time, key, idx in candidates:
            trial = dict(pointers)
            trial[key] = idx + 1
            if self._try_match(start + 1, trial, depth - 1):
                return True
        return not candidates  # no candidate: treat as unmatchable, accept

    def run(self) -> List[Optional[Tuple[str, int]]]:
        for i, (merged_time, ipid) in enumerate(self.merged):
            candidates = self._candidates(merged_time, ipid, self.pointers)
            if not candidates:
                self.stats_unmatched += 1
                continue
            best = candidates[0]
            top = [c for c in candidates if c[0] == best[0] and c[1] == best[1]]
            if len(top) > 1:
                # Order-based disambiguation (Figure 9): pick the candidate
                # that lets the following merged items still match.
                self.stats_ambiguous += 1
                chosen = None
                for candidate in top:
                    trial = dict(self.pointers)
                    trial[candidate[2]] = candidate[3] + 1
                    if self._try_match(i + 1, trial, self.lookahead):
                        chosen = candidate
                        break
                best = chosen if chosen is not None else top[0]
            _skips, _time, key, idx = best
            self.assignment[i] = (key, idx)
            self.pointers[key] = idx + 1
        return self.assignment


class TraceReconstructor:
    """Rebuilds per-packet journeys from :class:`CollectedData`."""

    def __init__(
        self,
        data: CollectedData,
        edges: Sequence[EdgeSpec],
        max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
        lookahead: int = 4,
        tolerant: bool = False,
        max_disorder: float = 0.2,
    ) -> None:
        self.data = data
        self.edges = list(edges)
        self.max_wait_ns = max_wait_ns
        self.lookahead = lookahead
        self.tolerant = tolerant
        #: Fraction of adjacent out-of-order batch pairs above which a
        #: stream is quarantined rather than repaired (tolerant mode).
        self.max_disorder = max_disorder
        self.stats = ReconstructionStats()
        #: Telemetry quality of the last ``reconstruct()`` pass.
        self.health = TelemetryHealth()
        self._nf_matched: Dict[str, int] = {}
        self._nf_expected: Dict[str, int] = {}
        self._break_spans: Dict[str, List[int]] = {}
        self._edge_delay: Dict[Tuple[str, str], int] = {
            (e.src, e.dst): e.delay_ns for e in self.edges
        }
        self._writers: Dict[str, List[str]] = {}
        for edge in self.edges:
            self._writers.setdefault(edge.dst, []).append(edge.src)
        # Matching results, filled by reconstruct().
        self._queue_match: Dict[str, List[Optional[Tuple[str, int]]]] = {}
        self._demux_match: Dict[str, List[Optional[Tuple[str, int]]]] = {}
        self._tx_back: Dict[str, Dict[str, Dict[int, int]]] = {}
        self._rx_items: Dict[str, List[_Item]] = {}
        self._writer_items: Dict[str, Dict[str, List[_Item]]] = {}
        self._tx_items: Dict[str, Dict[str, List[_Item]]] = {}

    # -- stream assembly -----------------------------------------------------

    def _rx_stream(self, nf: str) -> List[_Item]:
        items: List[_Item] = []
        records = self.data.nfs.get(nf)
        if records is None:
            return items
        for batch in records.rx:
            for ipid in batch.ipids:
                items.append(_Item(time_ns=batch.time_ns, ipid=ipid))
        return items

    def _writer_streams(self, nf: str) -> Dict[str, List[_Item]]:
        streams: Dict[str, List[_Item]] = {}
        for writer in self._writers.get(nf, []):
            delay = self._edge_delay[(writer, nf)]
            if writer in self.data.sources:
                streams[writer] = [
                    _Item(time_ns=rec.time_ns + delay, ipid=rec.ipid)
                    for rec in self.data.sources[writer]
                    if rec.target == nf
                ]
            else:
                records = self.data.nfs.get(writer)
                batches = records.tx_to(nf) if records else []
                streams[writer] = [
                    _Item(time_ns=batch.time_ns + delay, ipid=ipid)
                    for batch in batches
                    for ipid in batch.ipids
                ]
        return streams

    def _tx_streams(self, nf: str) -> Dict[str, List[_Item]]:
        records = self.data.nfs.get(nf)
        if records is None:
            return {}
        return {
            next_node: [
                _Item(time_ns=batch.time_ns, ipid=ipid)
                for batch in batches
                for ipid in batch.ipids
            ]
            for next_node, batches in records.tx.items()
        }

    # -- matching --------------------------------------------------------------

    def _match_queue(self, nf: str) -> None:
        rx = self._rx_items[nf]
        writers = self._writer_items[nf]
        merged = [(item.time_ns, item.ipid) for item in rx]

        def window_ok(arrival_ns: int, read_ns: int) -> bool:
            return arrival_ns <= read_ns and read_ns - arrival_ns <= self.max_wait_ns

        matcher = _StreamMatcher(
            merged, writers, window_ok, lookahead=self.lookahead
        )
        self._queue_match[nf] = matcher.run()
        self.stats.ambiguous_resolved += matcher.stats_ambiguous
        self.stats.unmatched_rx += matcher.stats_unmatched
        matched_writer_items = sum(1 for a in self._queue_match[nf] if a is not None)
        total_writer_items = sum(len(s) for s in writers.values())
        self.stats.inferred_drops += max(0, total_writer_items - matched_writer_items)
        self.stats.matched += matched_writer_items
        self._nf_matched[nf] = matched_writer_items
        self._nf_expected[nf] = total_writer_items

    def _match_demux(self, nf: str) -> None:
        rx = self._rx_items[nf]
        tx_streams = self._tx_items[nf]
        merged = [(item.time_ns, item.ipid) for item in rx]

        def window_ok(tx_ns: int, read_ns: int) -> bool:
            return tx_ns >= read_ns and tx_ns - read_ns <= self.max_wait_ns

        matcher = _StreamMatcher(merged, tx_streams, window_ok, lookahead=self.lookahead)
        assignment = matcher.run()
        self._demux_match[nf] = assignment
        back: Dict[str, Dict[int, int]] = {key: {} for key in tx_streams}
        for rx_index, match in enumerate(assignment):
            if match is not None:
                next_node, tx_index = match
                back[next_node][tx_index] = rx_index
        self._tx_back[nf] = back

    # -- stream validation (tolerant mode) -------------------------------------

    def _sanitize_streams(self) -> None:
        """Validate per-NF streams; repair mild disorder, quarantine the rest.

        Works on a shallow copy of ``self.data`` so the caller's records
        are never mutated.  A quarantined NF is removed from the matching
        entirely — downstream NFs then infer drops for everything it
        carried, which is exactly how a crashed collector looks.
        """
        sane_nfs: Dict[str, NFRecords] = {}
        for name, records in self.data.nfs.items():
            streams = [records.rx] + list(records.tx.values())
            total = sum(len(s) for s in streams)
            inversions = sum(
                sum(
                    1
                    for i in range(len(s) - 1)
                    if s[i + 1].time_ns < s[i].time_ns
                )
                for s in streams
            )
            if total and inversions / total > self.max_disorder:
                self.health.quarantined.add(name)
                self.health.completeness[name] = 0.0
                times = [b.time_ns for s in streams for b in s]
                self.health.gaps.append(
                    TelemetryGap(
                        nf=name,
                        start_ns=min(times),
                        end_ns=max(times),
                        kind="quarantine",
                        count=total,
                    )
                )
                continue
            if inversions:
                repaired = NFRecords(
                    rx=sorted(records.rx, key=lambda b: b.time_ns),
                    tx={
                        peer: sorted(batches, key=lambda b: b.time_ns)
                        for peer, batches in records.tx.items()
                    },
                )
                times = [b.time_ns for s in streams for b in s]
                self.health.gaps.append(
                    TelemetryGap(
                        nf=name,
                        start_ns=min(times),
                        end_ns=max(times),
                        kind="reorder",
                        count=inversions,
                    )
                )
                sane_nfs[name] = repaired
            else:
                sane_nfs[name] = records
        if self.health.quarantined or self.health.gaps:
            self.data = CollectedData(
                nfs=sane_nfs,
                sources=self.data.sources,
                exits=self.data.exits,
                max_batch=self.data.max_batch,
            )

    def _record_health(self, packets: Sequence[ReconstructedPacket]) -> None:
        """Per-NF completeness, retention, and loss gaps from the matchings."""
        # Retention: a record lost at ANY chain stage removes the whole
        # packet from the trace, so the trace samples every NF's traffic
        # more thinly than any single NF's record loss suggests.  The
        # chain survival rate over *observed* exit records measures that
        # thinning directly — and real packet drops never produce an exit
        # record, so (unlike completeness) they do not depress it.
        # Survival conditions on the exit record itself being present,
        # i.e. it reflects only n-1 of a chain's ~n independent drop
        # opportunities; survival^(n/(n-1)) removes that bias.
        exits_seen = self.stats.chains_built + self.stats.chains_broken
        survival = self.stats.chains_built / exits_seen if exits_seen else 1.0
        retention = survival
        if 0.0 < survival < 1.0 and packets:
            mean_hops = sum(len(p.hops) for p in packets) / len(packets)
            stages = max(2.0, 2.0 * mean_hops + 2.0)  # rx/tx per hop + src + exit
            retention = survival ** (stages / (stages - 1.0))
        for nf in self.data.nfs:
            total = self._nf_expected.get(nf, 0)
            matched = self._nf_matched.get(nf, 0)
            self.health.completeness[nf] = matched / total if total else 1.0
            self.health.retention[nf] = retention
            dropped = total - matched
            if dropped > 0:
                times = [
                    item.time_ns
                    for stream in self._writer_items[nf].values()
                    for item in stream
                ]
                if times:
                    self.health.gaps.append(
                        TelemetryGap(
                            nf=nf,
                            start_ns=min(times),
                            end_ns=max(times),
                            kind="loss",
                            count=dropped,
                        )
                    )
        for nf, span in self._break_spans.items():
            self.health.gaps.append(
                TelemetryGap(
                    nf=nf,
                    start_ns=min(span),
                    end_ns=max(span),
                    kind="chain-break",
                    count=len(span),
                )
            )

    # -- chaining ----------------------------------------------------------------

    def reconstruct(self) -> List[ReconstructedPacket]:
        """Run both matchings on every NF, then chain from exit records."""
        self.health = TelemetryHealth()
        self._break_spans = {}
        if self.tolerant:
            self._sanitize_streams()
        for nf in self.data.nfs:
            self._rx_items[nf] = self._rx_stream(nf)
            self._writer_items[nf] = self._writer_streams(nf)
            self._tx_items[nf] = self._tx_streams(nf)
        for nf in self.data.nfs:
            self._match_queue(nf)
            self._match_demux(nf)

        packets: List[ReconstructedPacket] = []
        exit_cursor: Dict[str, int] = {}
        for record in self.data.exits:
            nf = record.last_nf
            tx_index = exit_cursor.get(nf, 0)
            exit_cursor[nf] = tx_index + 1
            packet = self._chain_back(nf, tx_index, record.flow, record.time_ns)
            if packet is not None:
                packets.append(packet)
                self.stats.chains_built += 1
            else:
                self.stats.chains_broken += 1
        self._record_health(packets)
        return packets

    def _chain_back(
        self, last_nf: str, exit_tx_index: int, flow: object, exit_ns: int
    ) -> Optional[ReconstructedPacket]:
        hops_reversed: List[ReconstructedHop] = []
        nf = last_nf
        tx_stream_key = ""  # exit stream at the last NF
        tx_index = exit_tx_index
        # Guard against pathological match cycles; real chains are short.
        for _ in range(64):
            back = self._tx_back.get(nf, {}).get(tx_stream_key, {})
            rx_index = back.get(tx_index)
            if rx_index is None:
                self._note_break(nf, exit_ns)
                return None
            rx_item = self._rx_items[nf][rx_index]
            queue_match = self._queue_match[nf][rx_index]
            if queue_match is None:
                self._note_break(nf, exit_ns)
                return None
            writer, writer_index = queue_match
            arrival = self._writer_items[nf][writer][writer_index].time_ns
            tx_stream = self._tx_items[nf].get(tx_stream_key, [])
            depart = tx_stream[tx_index].time_ns if tx_index < len(tx_stream) else -1
            hops_reversed.append(
                ReconstructedHop(
                    nf=nf, arrival_ns=arrival, read_ns=rx_item.time_ns, depart_ns=depart
                )
            )
            if writer in self.data.sources:
                emitted = arrival - self._edge_delay[(writer, nf)]
                return ReconstructedPacket(
                    flow=flow,
                    source=writer,
                    emitted_ns=emitted,
                    hops=list(reversed(hops_reversed)),
                    exited_ns=exit_ns,
                )
            # The writer item is the writer's TX record on the edge
            # writer -> nf; step back into the writer NF.
            tx_stream_key = nf
            tx_index = writer_index
            nf = writer
        self._note_break(nf, exit_ns)
        return None

    def _note_break(self, nf: str, exit_ns: int) -> None:
        if self.tolerant:
            self._break_spans.setdefault(nf, []).append(exit_ns)
