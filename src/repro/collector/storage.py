"""Shared-memory ring buffer + standalone dumper model (section 5).

To keep collection off the NF's critical path, the paper's collector writes
records into shared memory; a separate dumper process drains them to disk.
We model that stage explicitly so the "can the dumper keep up?" question is
answerable: a bounded byte ring written at collection time and drained at a
configurable disk bandwidth.  Overflow counts records lost — at realistic
record rates (2 B/packet at a few Mpps => a few MB/s) loss should be zero,
which a test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass
class DumperStats:
    """Outcome of draining a record stream through the ring."""

    bytes_offered: int = 0
    bytes_written: int = 0
    bytes_lost: int = 0
    peak_occupancy: int = 0

    @property
    def loss_fraction(self) -> float:
        if self.bytes_offered == 0:
            return 0.0
        return self.bytes_lost / self.bytes_offered


class SharedMemoryRing:
    """Byte-granularity single-producer single-consumer ring model.

    The producer (NF-side collector) appends ``(time_ns, n_bytes)`` writes;
    the consumer (dumper) drains continuously at ``drain_bytes_per_s``.
    Between two writes the ring drains ``elapsed * rate`` bytes.  A write
    that does not fit is lost in its entirety (the real collector drops the
    record rather than blocking the NF).
    """

    def __init__(self, capacity_bytes: int, drain_bytes_per_s: float) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(f"ring capacity must be positive: {capacity_bytes}")
        if drain_bytes_per_s <= 0:
            raise ConfigurationError(f"drain rate must be positive: {drain_bytes_per_s}")
        self.capacity_bytes = capacity_bytes
        self.drain_bytes_per_s = drain_bytes_per_s
        self._occupancy = 0.0
        self._last_ns = 0
        self.stats = DumperStats()

    def offer(self, time_ns: int, n_bytes: int) -> bool:
        """Try to append ``n_bytes`` at ``time_ns``; False when dropped."""
        if time_ns < self._last_ns:
            raise ConfigurationError("writes must be time-ordered")
        elapsed = time_ns - self._last_ns
        self._last_ns = time_ns
        drained = elapsed * self.drain_bytes_per_s / 1e9
        self._occupancy = max(0.0, self._occupancy - drained)
        self.stats.bytes_offered += n_bytes
        if self._occupancy + n_bytes > self.capacity_bytes:
            self.stats.bytes_lost += n_bytes
            return False
        self._occupancy += n_bytes
        if self._occupancy > self.stats.peak_occupancy:
            self.stats.peak_occupancy = int(self._occupancy)
        self.stats.bytes_written += n_bytes
        return True


def drain_batches(
    batch_stream: List[Tuple[int, int]],
    capacity_bytes: int = 1 << 20,
    drain_bytes_per_s: float = 200e6,
) -> DumperStats:
    """Feed a ``(time_ns, bytes)`` stream through a ring and report stats."""
    ring = SharedMemoryRing(capacity_bytes, drain_bytes_per_s)
    for time_ns, n_bytes in batch_stream:
        ring.offer(time_ns, n_bytes)
    return ring.stats
