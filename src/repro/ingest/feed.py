"""Bounded telemetry ingestion pipeline: transports, buffers, backpressure.

The feed sits between a telemetry *transport* (the network-facing side)
and the incremental trace builder.  Its contract is the robustness core
of live mode:

* **bounded memory** — per-stream :class:`IngestBuffer`\\ s have a hard
  record capacity; total buffered records can never exceed
  ``streams * capacity`` no matter how the transport or a straggler
  misbehaves (``peak_buffered`` in :class:`FeedStats` proves it);
* **tiered overload response** — when a buffer is full the feed first
  *backpressures*: a pull-based transport simply isn't pulled from, so
  records wait at the source.  Only when the transport cannot hold data
  (``can_backpressure = False``) does tier two fire: the oldest
  *evidence* records (hops) are shed first, identity records (emits,
  drops, exits) last, and every shed is accounted — the builder later
  turns the resulting sequence gaps into explicit
  :class:`~repro.collector.health.TelemetryGap` markers, and the service
  journals them per chunk.  Nothing is ever dropped silently;
* **flaky-transport survival** — pulls that raise
  :class:`~repro.errors.TransportError` are retried with jittered
  exponential backoff (the same deterministic substream-RNG pattern the
  service uses for chunk retries) and a reconnect between attempts.
  Because the RNG is seeded and the transport's fault schedule is seeded,
  a crash-restarted service replays the identical pull/retry/shed
  sequence — the property the ingest-path crash tests pin.

:class:`SimTransport` replays records captured by
:class:`~repro.nfv.tap.LiveRecordTap`; :class:`FlakyTransport` wraps any
transport with seeded fault injection (pull failures, forced disconnects,
record drops and duplications) for soak tests and CI chaos jobs.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import IngestError, PeerGone, TransportError
from repro.ingest.records import TelemetryRecord
from repro.util.retry import RetryPolicy, retry_call
from repro.util.rng import substream


@dataclass
class FeedConfig:
    """Operating parameters of one :class:`TelemetryFeed`."""

    #: Hard per-stream buffer capacity, in records.
    buffer_capacity: int = 4096
    #: Max records pulled from one stream per pump round.
    max_pull: int = 512
    #: Transport retry policy (jittered exponential backoff).
    max_retries: int = 8
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    jitter_seed: int = 0
    #: Pump rounds with an empty pull before a stream counts as stalled
    #: (feeds the straggler-timeout decision in the builder).
    stall_after_pumps: int = 3

    def __post_init__(self) -> None:
        if self.buffer_capacity <= 0:
            raise IngestError(
                f"buffer capacity must be positive: {self.buffer_capacity}"
            )
        if self.max_pull <= 0:
            raise IngestError(f"max_pull must be positive: {self.max_pull}")


@dataclass
class FeedStats:
    """Everything the feed did, pure ints/floats (checkpoint-safe)."""

    records: int = 0
    #: Transport *errors*: garbled frames, injected faults, timeouts.
    transport_failures: int = 0
    #: Peer *absence*: EOF-style disconnects and heartbeat-dead peers
    #: (:class:`~repro.errors.PeerGone`).  Kept apart from failures so
    #: the taxonomy survives into socket transports: a collector that
    #: died and a link that corrupts bytes are different operator pages.
    disconnects: int = 0
    retries: int = 0
    reconnects: int = 0
    backoff_total_s: float = 0.0
    sheds: int = 0
    peak_buffered: int = 0
    pumps: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "FeedStats":
        # Tolerate payloads from before a counter existed (old snapshots):
        # missing counters restore to their zero default.
        return cls(
            **{f.name: payload[f.name] for f in fields(cls) if f.name in payload}
        )


class IngestBuffer:
    """One stream's bounded FIFO of received-but-unapplied records.

    Thread-safe: transports that deliver from their own receive thread
    (push-style taps) hand records over via :meth:`try_push` while the
    service thread drains with :meth:`head`/:meth:`pop`, so every state
    transition — including the shed walk — happens under one lock.
    ``try_push`` enforces the capacity bound at the handoff itself and
    refuses (returns False) when full, making the producer's peak
    occupancy bounded regardless of scheduling; the feed's own
    :meth:`push` path keeps its tier-1 backpressure / tier-2 shed policy
    upstream of the buffer and asserts room beforehand, so it never
    trips the bound.
    """

    def __init__(self, stream: str, capacity: int) -> None:
        self.stream = stream
        self.capacity = capacity
        self._records: Deque[TelemetryRecord] = deque()
        self._lock = threading.Lock()
        #: Newest received record time (monotone; the stream watermark).
        self.watermark = -1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def room(self) -> int:
        with self._lock:
            return self.capacity - len(self._records)

    def push(self, record: TelemetryRecord) -> None:
        with self._lock:
            self._push_locked(record)

    def try_push(self, record: TelemetryRecord) -> bool:
        """Push unless full; the check and the append are one atomic step
        (a lock-free check-then-push would let two producers both see one
        free slot and overfill the buffer)."""
        with self._lock:
            if len(self._records) >= self.capacity:
                return False
            self._push_locked(record)
            return True

    def _push_locked(self, record: TelemetryRecord) -> None:
        self._records.append(record)
        if record.time_ns > self.watermark:
            self.watermark = record.time_ns

    def head(self) -> Optional[TelemetryRecord]:
        with self._lock:
            return self._records[0] if self._records else None

    def snapshot(self) -> Tuple[List[TelemetryRecord], int]:
        """Atomic copy of (buffered records, watermark) for checkpoints."""
        with self._lock:
            return list(self._records), self.watermark

    def restore(self, records: List[TelemetryRecord], watermark: int) -> None:
        """Replace contents with a snapshot (crash-recovery restore)."""
        if len(records) > self.capacity:
            raise IngestError(
                f"snapshot of stream {self.stream!r} holds {len(records)} "
                f"records, capacity is {self.capacity}"
            )
        with self._lock:
            self._records = deque(records)
            self.watermark = watermark

    def pop(self) -> TelemetryRecord:
        with self._lock:
            return self._records.popleft()

    def shed(self, n: int) -> List[TelemetryRecord]:
        """Shed ``n`` records, oldest evidence (hop) records first.

        Identity records (emit/drop/exit) are the packet chain's skeleton
        — shedding a hop degrades one NF's evidence for one packet, while
        shedding an emit orphans every downstream record of that packet.
        So hops go first, oldest first; identity records are shed only
        when nothing else is left.
        """
        if n <= 0:
            return []
        with self._lock:
            kept: Deque[TelemetryRecord] = deque()
            shed: List[TelemetryRecord] = []
            for record in self._records:
                if len(shed) < n and record.kind == "hop":
                    shed.append(record)
                else:
                    kept.append(record)
            while len(shed) < n and kept:
                shed.append(kept.popleft())
            self._records = kept
            return shed


class SimTransport:
    """Replayable pull-based transport over captured tap records.

    The canonical implementation of the transport contract:

    * ``streams()`` — the fixed stream name set;
    * ``pull(stream, max_n)`` — up to ``max_n`` next records, in order;
    * ``at_eos(stream)`` — no further records will ever arrive;
    * ``reset()`` — replay from the beginning (what a restarted service
      does; determinism of the replay is what makes ingest crash-safe).

    ``can_backpressure`` advertises that unpulled records wait here
    indefinitely; transports that cannot hold data (push-style, lossy
    upstream rings) set it False and accept that the feed may shed.
    """

    def __init__(
        self,
        records: Sequence[TelemetryRecord],
        streams: Sequence[str] = (),
        can_backpressure: bool = True,
    ) -> None:
        self._by_stream: Dict[str, List[TelemetryRecord]] = {
            name: [] for name in streams
        }
        for record in records:
            self._by_stream.setdefault(record.stream, []).append(record)
        self._cursor: Dict[str, int] = {name: 0 for name in self._by_stream}
        self.can_backpressure = can_backpressure

    def streams(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_stream))

    def pull(self, stream: str, max_n: int) -> List[TelemetryRecord]:
        records = self._by_stream[stream]
        cursor = self._cursor[stream]
        batch = records[cursor : cursor + max_n]
        self._cursor[stream] = cursor + len(batch)
        return batch

    def at_eos(self, stream: str) -> bool:
        return self._cursor[stream] >= len(self._by_stream[stream])

    def reset(self) -> None:
        for stream in self._cursor:
            self._cursor[stream] = 0


class DeadStreamTransport:
    """Wrapper that silences one stream from ``after_ns`` on, without EOS.

    Models a collector that died mid-run: its remaining records are never
    delivered and the stream never reports end-of-stream — the scenario
    the straggler timeout exists for.
    """

    def __init__(self, inner, dead_stream: str, after_ns: int) -> None:
        self.inner = inner
        self.dead_stream = dead_stream
        self.after_ns = after_ns
        self.can_backpressure = getattr(inner, "can_backpressure", True)

    def streams(self) -> Tuple[str, ...]:
        return self.inner.streams()

    def pull(self, stream: str, max_n: int) -> List[TelemetryRecord]:
        if stream != self.dead_stream:
            return self.inner.pull(stream, max_n)
        batch: List[TelemetryRecord] = []
        for _ in range(max_n):
            probe = self.inner.pull(stream, 1)
            if not probe or probe[0].time_ns >= self.after_ns:
                break  # anything at or past the death time is lost forever
            batch.append(probe[0])
        return batch

    def at_eos(self, stream: str) -> bool:
        return False if stream == self.dead_stream else self.inner.at_eos(stream)

    def reset(self) -> None:
        self.inner.reset()


class FlakyTransport:
    """Seeded fault-injecting wrapper around any transport.

    Per pull, with independent seeded draws: ``fail_prob`` raises
    :class:`TransportError` and drops the connection (a retry must
    reconnect first); per record, ``drop_prob`` loses it (a sequence gap
    the builder will account) and ``dup_prob`` delivers it twice (the
    builder deduplicates by sequence number).  All draws come from one
    ``substream(seed, ...)`` RNG, so two runs with the same seed — e.g. a
    crashed service and its restart — see the identical fault schedule.
    """

    def __init__(
        self,
        inner,
        fail_prob: float = 0.0,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.fail_prob = fail_prob
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.seed = seed
        self._rng = substream(seed, "flaky-transport")
        self._connected = True
        self.can_backpressure = getattr(inner, "can_backpressure", True)

    def streams(self) -> Tuple[str, ...]:
        return self.inner.streams()

    def reconnect(self) -> None:
        self._connected = True

    def pull(self, stream: str, max_n: int) -> List[TelemetryRecord]:
        if not self._connected:
            # Absence, not corruption: pulls against a dropped connection
            # are the dead-peer shape, counted as disconnects by the feed.
            raise PeerGone(f"transport disconnected (stream {stream!r})")
        if self.fail_prob and float(self._rng.random()) < self.fail_prob:
            self._connected = False
            raise TransportError(f"injected pull failure on stream {stream!r}")
        batch = self.inner.pull(stream, max_n)
        if not (self.drop_prob or self.dup_prob):
            return batch
        delivered: List[TelemetryRecord] = []
        for record in batch:
            if self.drop_prob and float(self._rng.random()) < self.drop_prob:
                continue
            delivered.append(record)
            if self.dup_prob and float(self._rng.random()) < self.dup_prob:
                delivered.append(record)
        return delivered

    def at_eos(self, stream: str) -> bool:
        return self.inner.at_eos(stream)

    def reset(self) -> None:
        self.inner.reset()
        self._rng = substream(self.seed, "flaky-transport")
        self._connected = True


class TelemetryFeed:
    """Pulls records from a transport into bounded per-stream buffers."""

    def __init__(
        self,
        transport,
        config: Optional[FeedConfig] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.transport = transport
        self.config = config or FeedConfig()
        self.sleep = sleep
        self.buffers: Dict[str, IngestBuffer] = {
            stream: IngestBuffer(stream, self.config.buffer_capacity)
            for stream in transport.streams()
        }
        self.stats = FeedStats()
        #: Shed records not yet drained by the trace source (for per-chunk
        #: journal accounting): (stream, seq, time_ns, kind) tuples.
        self.pending_sheds: List[Tuple[str, int, int, str]] = []
        self._rng = substream(self.config.jitter_seed, "ingest-backoff")
        self._stalls: Dict[str, int] = {stream: 0 for stream in self.buffers}
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            base_s=self.config.backoff_base_s,
            cap_s=self.config.backoff_cap_s,
        )

    # -- transport side ---------------------------------------------------------

    def _on_pull_failure(self, exc: BaseException, attempt: int) -> None:
        """Per-failure accounting + reconnect (the retry helper's hook)."""
        if isinstance(exc, PeerGone):
            self.stats.disconnects += 1
        else:
            self.stats.transport_failures += 1
        reconnect = getattr(self.transport, "reconnect", None)
        if reconnect is not None:
            reconnect()
            self.stats.reconnects += 1

    def _on_pull_retry(self, delay: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_total_s += delay

    def _pull_with_retry(self, stream: str, max_n: int) -> List[TelemetryRecord]:
        return retry_call(
            lambda: self.transport.pull(stream, max_n),
            self._retry_policy,
            self._rng,
            sleep=self.sleep,
            retry_on=TransportError,
            on_failure=self._on_pull_failure,
            on_retry=self._on_pull_retry,
            give_up=lambda exc, attempts: IngestError(
                f"stream {stream!r} failed after {attempts} pull "
                f"attempts: {exc}"
            ),
        )

    def pump(self) -> bool:
        """One ingestion round over every stream; True if anything arrived.

        Streams are visited in sorted order so the pull/fault/shed
        sequence is deterministic.  A full buffer on a backpressure-capable
        transport is simply skipped (tier one); on a non-backpressure
        transport the pull proceeds and the overflow is shed with
        accounting (tier two).
        """
        self.stats.pumps += 1
        progress = False
        backpressure = getattr(self.transport, "can_backpressure", True)
        for stream in sorted(self.buffers):
            buffer = self.buffers[stream]
            if self.transport.at_eos(stream):
                continue
            want = self.config.max_pull
            if backpressure:
                want = min(want, buffer.room)
                if want <= 0:
                    continue  # tier one: leave records at the source
            records = self._pull_with_retry(stream, want)
            if not records:
                self._stalls[stream] += 1
                continue
            progress = True
            self._stalls[stream] = 0
            self.stats.records += len(records)
            for record in records:
                buffer.push(record)
            overflow = len(buffer) - buffer.capacity
            if overflow > 0:  # tier two: shed with accounting, never grow
                for shed in buffer.shed(overflow):
                    self.pending_sheds.append(
                        (shed.stream, shed.seq, shed.time_ns, shed.kind)
                    )
                self.stats.sheds += overflow
        buffered = sum(len(b) for b in self.buffers.values())
        if buffered > self.stats.peak_buffered:
            self.stats.peak_buffered = buffered
        return progress

    # -- builder side -----------------------------------------------------------

    def watermark(self, stream: str) -> int:
        return self.buffers[stream].watermark

    def at_eos(self, stream: str) -> bool:
        return self.transport.at_eos(stream)

    def stalled(self, stream: str) -> bool:
        return self._stalls[stream] >= self.config.stall_after_pumps

    def exhausted(self) -> bool:
        """Every stream at end-of-stream with nothing left buffered."""
        return all(
            self.transport.at_eos(stream) and not self.buffers[stream]
            for stream in self.buffers
        )

    def take_sheds(self) -> List[Tuple[str, int, int, str]]:
        sheds, self.pending_sheds = self.pending_sheds, []
        return sheds
