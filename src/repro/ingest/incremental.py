"""Incremental trace building under a low-watermark sealing barrier.

:class:`IncrementalTrace` *is* a :class:`~repro.core.records.DiagTrace`
that grows in place as telemetry records drain out of a
:class:`~repro.ingest.feed.TelemetryFeed`.  Two invariants make the
result interchangeable with an offline trace:

* **Apply order is the global merge order.**  A record is applied only
  once its timestamp is below the *horizon* — the minimum watermark over
  every stream that can still deliver data — or at the horizon and
  cleared by the name-ordered tie rule (see :meth:`IncrementalTrace._drain`),
  and applied records are sorted by ``(time_ns, stream, seq)``.  Every
  future record on any stream carries a timestamp at or above the horizon
  (streams are time-monotone), so the concatenation of all apply batches
  is one globally sorted sequence no matter how the transport interleaved
  the streams.  On clean input that sequence reproduces the offline
  construction order exactly — packet insertion order, hop list order,
  per-NF stream contents — which is what the bit-identity tests pin.

* **Sealing is conservative.**  Chunk ``k`` (covering
  ``[k*chunk_ns, (k+1)*chunk_ns)``) is *sealed* — safe to diagnose,
  journal and checkpoint — only once the applied horizon has passed its
  end by ``seal_margin_ns``.  The margin buys the diagnosis the same
  look-ahead the offline streaming engine gets from having the whole
  trace: periods of chunk-``k`` victims may extend past the chunk end,
  and sealing early would diagnose them against a still-growing tail.

Degraded telemetry never crashes the builder.  Sequence gaps become
``loss`` :class:`~repro.collector.health.TelemetryGap`\\ s, repeated
sequence numbers are deduplicated, time regressions and malformed
payloads are rejected with gaps, and records whose packet identity never
arrived (the emit was lost) become ``chain-break`` gaps — all feeding the
same :class:`~repro.collector.health.TelemetryHealth` machinery the
tolerant reconstructor uses, so diagnosis confidence degrades instead of
output corrupting.  A stream that stalls while its peers advance past the
*straggler timeout* is quarantined: the barrier stops waiting for it,
chunks seal anyway, and the quarantine gap makes the missing evidence
explicit.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.collector.health import TelemetryGap, TelemetryHealth
from repro.core.records import DiagTrace, NFView, PacketHop, PacketView
from repro.errors import IngestError
from repro.ingest.feed import TelemetryFeed
from repro.ingest.records import TelemetryRecord
from repro.nfv.packet import FiveTuple


@dataclass
class IngestConfig:
    """Sealing-barrier parameters of one :class:`IncrementalTrace`."""

    #: Chunk width — must match the diagnosing service's ``chunk_ns``.
    chunk_ns: int = 50_000_000
    #: How far the applied horizon must clear a chunk's end before the
    #: chunk seals.  Must cover the longest in-flight residence a victim's
    #: queuing period can extend past the chunk boundary.
    seal_margin_ns: int = 100_000_000
    #: Quarantine a stalled stream once the fastest stream leads it by
    #: this much (None = wait forever; the default for clean transports).
    straggler_timeout_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chunk_ns <= 0:
            raise IngestError(f"chunk_ns must be positive: {self.chunk_ns}")
        if self.seal_margin_ns < 0:
            raise IngestError(
                f"seal_margin_ns must be non-negative: {self.seal_margin_ns}"
            )


def _insert_sorted(stream: List[Tuple[int, int]], item: Tuple[int, int]) -> None:
    # Departs (and usually drops) arrive already sorted; arrivals/reads
    # ride inside hop records emitted at depart time, so they can land
    # out of order and need the insort.
    if not stream or item >= stream[-1]:
        stream.append(item)
    else:
        bisect.insort(stream, item)


class IncrementalTrace(DiagTrace):
    """A DiagTrace that grows from live telemetry streams."""

    def __init__(
        self,
        packets: Dict[int, PacketView],
        nfs: Dict[str, NFView],
        upstreams: Dict[str, Set[str]],
        sources: Set[str],
        nf_types: Optional[Dict[str, str]] = None,
        config: Optional[IngestConfig] = None,
    ) -> None:
        super().__init__(
            packets=packets,
            nfs=nfs,
            upstreams=upstreams,
            sources=sources,
            nf_types=nf_types,
        )
        self.config = config or IngestConfig()
        self.health = TelemetryHealth()
        self._next_seq: Dict[str, int] = {}
        self._last_time: Dict[str, int] = {}
        self._ok: Dict[str, int] = {}
        self._lost: Dict[str, int] = {}
        self._excluded: Set[str] = set()
        self._applied_horizon = -1
        self._max_depart_ns = 0
        self._complete = False
        self.records_applied = 0
        self.duplicates = 0
        self.rejects = 0
        #: Health-gap entries and packets evicted by :meth:`prune_before`
        #: (the state itself is gone; the cumulative counts keep
        #: ``ingest_stats`` monotone and are journalled per chunk so
        #: eviction is auditable).
        self.gaps_evicted = 0
        self.packets_evicted = 0

    @classmethod
    def for_topology(
        cls, topology, config: Optional[IngestConfig] = None
    ) -> "IncrementalTrace":
        """Empty trace carrying the same identity ``from_sim_result`` builds."""
        rates = dict(topology.peak_rates_pps())
        nfs = {
            name: NFView(name=name, peak_rate_pps=rates[name])
            for name in topology.nfs
        }
        return cls(
            packets={},
            nfs=nfs,
            upstreams={name: topology.predecessors(name) for name in topology.nfs},
            sources=set(topology.sources),
            nf_types=topology.nf_types(),
            config=config,
        )

    # -- health accounting ------------------------------------------------------

    def _degrade(self) -> None:
        """Attach the health object on first degradation (strict until then)."""
        if self.telemetry is None:
            self.telemetry = self.health

    def _account_loss(self, stream: str, count: int) -> None:
        self._lost[stream] = self._lost.get(stream, 0) + count
        ok = self._ok.get(stream, 0)
        lost = self._lost[stream]
        self.health.completeness[stream] = ok / (ok + lost)
        self._degrade()

    def _gap(self, stream: str, start_ns: int, end_ns: int, kind: str, count: int) -> None:
        self.health.gaps.append(
            TelemetryGap(
                nf=stream,
                start_ns=max(0, start_ns),
                end_ns=max(0, start_ns, end_ns),
                kind=kind,
                count=count,
            )
        )
        self._degrade()

    def _reject(self, record: TelemetryRecord, kind: str) -> None:
        self.rejects += 1
        last = self._last_time.get(record.stream, 0)
        self._gap(record.stream, last, record.time_ns, kind, count=1)
        self._account_loss(record.stream, 1)

    # -- ingestion --------------------------------------------------------------

    def _quarantine_stragglers(self, feed: TelemetryFeed) -> None:
        timeout = self.config.straggler_timeout_ns
        if timeout is None:
            return
        watermarks = {
            stream: feed.watermark(stream)
            for stream in feed.buffers
            if stream not in self._excluded
        }
        if not watermarks:
            return
        max_wm = max(watermarks.values())
        for stream, wm in watermarks.items():
            if feed.at_eos(stream):
                continue
            if feed.stalled(stream) and max_wm - wm > timeout:
                self._excluded.add(stream)
                self.health.quarantined.add(stream)
                self._gap(stream, max(0, wm), max_wm, "quarantine", count=0)

    def _horizon(self, feed: TelemetryFeed) -> Optional[int]:
        """Min watermark over streams that can still deliver; None = no limit."""
        horizon: Optional[int] = None
        unconstrained = True
        for stream in feed.buffers:
            if stream in self._excluded or feed.at_eos(stream):
                continue
            unconstrained = False
            wm = feed.watermark(stream)
            if horizon is None or wm < horizon:
                horizon = wm
        if unconstrained:
            return None
        return horizon

    def _drain(self, feed: TelemetryFeed, horizon: Optional[int]) -> List[TelemetryRecord]:
        """Pop, validate and sequence-check records up to the horizon.

        Records strictly below the horizon are always safe.  Records *at*
        the horizon need the tie rule: a future record at the horizon
        timestamp can only come from a live stream whose watermark equals
        the horizon, and it would merge-sort after that stream's buffered
        records (larger seq) but before any larger-named stream's.  So,
        sweeping streams in ascending name order, horizon-timestamp
        records drain until the first live horizon-tied stream is passed —
        everything after it must wait.  Without this rule a burst of
        same-timestamp records larger than the buffer deadlocks the
        barrier: the buffer is full of records at the stream's own
        watermark, nothing is below the horizon, and the stream can never
        be pulled again.
        """
        batch: List[TelemetryRecord] = []
        tie_open = True
        for stream in sorted(feed.buffers):
            buffer = feed.buffers[stream]
            if stream in self._excluded:
                # Quarantined evidence: drained and discarded (the
                # quarantine gap already marks the stream untrusted).
                while buffer:
                    buffer.pop()
                    self.rejects += 1
                continue
            live_at_horizon = (
                horizon is not None
                and not feed.at_eos(stream)
                and feed.watermark(stream) == horizon
            )
            while buffer:
                head = buffer.head()
                if horizon is not None and (
                    head.time_ns > horizon
                    or (head.time_ns == horizon and not tie_open)
                ):
                    break
                record = buffer.pop()
                expected = self._next_seq.get(stream, 0)
                if record.seq < expected:
                    self.duplicates += 1
                    continue
                if record.seq > expected:
                    missing = record.seq - expected
                    self._gap(
                        stream,
                        self._last_time.get(stream, 0),
                        record.time_ns,
                        "loss",
                        count=missing,
                    )
                    self._account_loss(stream, missing)
                self._next_seq[stream] = record.seq + 1
                if record.time_ns < self._last_time.get(stream, 0):
                    self._reject(record, "reorder")
                    continue
                self._last_time[stream] = record.time_ns
                batch.append(record)
            if live_at_horizon:
                # This stream may still deliver more records at exactly
                # the horizon; larger-named streams' horizon records
                # would sort after them, so they stay buffered.
                tie_open = False
        batch.sort(key=lambda record: record.merge_key)
        return batch

    def _apply(self, record: TelemetryRecord) -> bool:
        stream = record.stream
        if record.pid < 0:
            self._reject(record, "loss")
            return False
        if record.kind == "emit":
            if stream not in self.sources or len(record.data) != 5:
                self._reject(record, "loss")
                return False
            if record.pid in self.packets:
                self._reject(record, "loss")
                return False
            self.packets[record.pid] = PacketView(
                pid=record.pid,
                flow=FiveTuple(*record.data),
                source=stream,
                emitted_ns=record.time_ns,
            )
            self._mark_mutated()  # cached columns must rebuild
            return True
        view = self.nfs.get(stream)
        if view is None:
            self._reject(record, "loss")
            return False
        packet = self.packets.get(record.pid)
        if packet is None:
            # The emit that named this packet never arrived: the chain is
            # broken and the evidence cannot be attached anywhere.
            self._reject(record, "chain-break")
            return False
        if record.kind == "hop":
            if len(record.data) != 2:
                self._reject(record, "loss")
                return False
            arrival_ns, read_ns = record.data
            if not 0 <= arrival_ns <= read_ns <= record.time_ns:
                self._reject(record, "loss")
                return False
            packet.hops.append(
                PacketHop(
                    nf=stream,
                    arrival_ns=arrival_ns,
                    read_ns=read_ns,
                    depart_ns=record.time_ns,
                )
            )
            _insert_sorted(view.arrivals, (arrival_ns, record.pid))
            _insert_sorted(view.reads, (read_ns, record.pid))
            _insert_sorted(view.departs, (record.time_ns, record.pid))
            if record.time_ns > self._max_depart_ns:
                self._max_depart_ns = record.time_ns
        elif record.kind == "drop":
            packet.dropped_at = stream
            packet.dropped_ns = record.time_ns
            _insert_sorted(view.drops, (record.time_ns, record.pid))
        else:  # exit
            packet.exited_ns = record.time_ns
        self._mark_mutated()  # cached columns must rebuild
        return True

    def ingest(self, feed: TelemetryFeed) -> int:
        """Drain and apply every record below the current barrier.

        Returns the number of records applied.  Call after each
        ``feed.pump()``; safe to call when nothing advanced.
        """
        self._quarantine_stragglers(feed)
        horizon = self._horizon(feed)
        applied = 0
        for record in self._drain(feed, horizon):
            if self._apply(record):
                applied += 1
                self._ok[record.stream] = self._ok.get(record.stream, 0) + 1
                if record.stream in self.health.completeness:
                    ok = self._ok[record.stream]
                    lost = self._lost.get(record.stream, 0)
                    self.health.completeness[record.stream] = ok / (ok + lost)
        self.records_applied += applied
        if horizon is not None and horizon > self._applied_horizon:
            self._applied_horizon = horizon
        if horizon is None and all(
            stream in self._excluded
            or (feed.at_eos(stream) and not feed.buffers[stream])
            for stream in feed.buffers
        ):
            self._complete = True
        return applied

    # -- sealing ----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Every stream fully delivered (or quarantined) and applied."""
        return self._complete

    def n_chunks(self) -> int:
        """Chunk count of the trace built *so far* (grows until complete)."""
        return max(0, self._max_depart_ns) // self.config.chunk_ns + 1

    def sealed_chunks(self) -> int:
        """Chunks safe to diagnose: barrier-cleared, or all of them at EOS."""
        if self._complete:
            return self.n_chunks()
        if self._applied_horizon < 0:
            return 0
        sealed = (self._applied_horizon - self.config.seal_margin_ns) // self.config.chunk_ns
        return max(0, sealed)

    def ingest_stats(self) -> Dict[str, int]:
        """Pure-int ingestion counters (checkpoint/stats safe).

        ``gaps`` counts every gap ever recorded — pruning moves old
        entries from the live list into ``gaps_evicted``, keeping the
        total monotone across a week of eviction.
        """
        return {
            "records_applied": self.records_applied,
            "duplicates": self.duplicates,
            "rejects": self.rejects,
            "gaps": len(self.health.gaps) + self.gaps_evicted,
            "quarantined": len(self.health.quarantined),
            "evictions": self.packets_evicted + self.gaps_evicted,
        }

    # -- pruning (bounded memory) ----------------------------------------------

    def _queue_empty_cut(self, view: NFView, cut_ns: int) -> int:
        """Largest ``b <= cut_ns`` where ``view``'s queue is empty at ``b``.

        Queue depth just before ``b`` is ``#{arrivals < b} - #{reads < b}``
        (drops live in a separate stream and never enter the balance).
        When it is positive, any empty point must see at most ``j`` (the
        read count) arrivals, i.e. lie at or below arrival ``j``'s
        timestamp — jump there and re-test.  The arrival index strictly
        decreases each round, so this terminates (at 0 in the worst case).
        """
        b = cut_ns
        while b > 0:
            i = bisect.bisect_left(view.arrivals, (b, -1))
            j = bisect.bisect_left(view.reads, (b, -1))
            if i == j:
                return b
            b = view.arrivals[j][0]
        return 0

    def safe_cut(self, cut_ns: int) -> int:
        """Lower ``cut_ns`` until no NF has a busy period spanning it.

        Pruning is output-invariant only if no queuing interacts across
        the cut: a packet discarded behind the cut must not change any
        future window's queue depths or busy-period structure.  At a
        queue-empty instant every earlier arrival has been read, so
        removing terminated packets wholly behind it shifts the arrival
        and read cumulative counts *equally* — depths at and after the
        cut are untouched.  Under sustained overload the cut can regress
        far behind the nominal horizon; memory then grows with the busy
        period, which is the price of exactness (and an overload signal
        in its own right).
        """
        cut = cut_ns
        for view in self.nfs.values():
            if cut <= 0:
                return 0
            cut = self._queue_empty_cut(view, cut)
        return max(0, cut)

    def prune_before(self, cut_ns: int) -> Dict[str, int]:
        """Evict state the diagnosis of future chunks can never touch.

        Drops terminated packets (exited or dropped) whose every event
        lies strictly before the queue-empty-safe cut, their per-NF view
        events, and health gaps that ended before the cut (quarantine
        gaps of a permanently dead stream included — the stream itself
        stays in ``health.quarantined``, which is bounded by the stream
        count).  Returns ``{"cut_ns", "packets", "gaps"}``.

        The prune is a pure function of (trace state, cut): replaying it
        at the same chunk boundary on a crash-restored twin yields the
        identical pruned state, which is what keeps bounded replay
        byte-identical to the full-replay oracle.
        """
        cut = self.safe_cut(cut_ns)
        result = {"cut_ns": cut, "packets": 0, "gaps": 0}
        if cut <= 0:
            return result
        evicted: Set[int] = set()
        for pid, packet in self.packets.items():
            if packet.exited_ns < 0 and packet.dropped_at is None:
                continue  # still in flight: future records may attach
            last = max(
                packet.emitted_ns,
                packet.exited_ns,
                packet.dropped_ns,
                max((hop.depart_ns for hop in packet.hops), default=0),
            )
            if last < cut:
                evicted.add(pid)
        for pid in evicted:
            del self.packets[pid]
        if evicted:
            for view in self.nfs.values():
                view.arrivals[:] = [
                    e for e in view.arrivals if e[1] not in evicted
                ]
                view.reads[:] = [e for e in view.reads if e[1] not in evicted]
                view.departs[:] = [
                    e for e in view.departs if e[1] not in evicted
                ]
                view.drops[:] = [e for e in view.drops if e[1] not in evicted]
                # Length-based cache invalidation can miss an equal-length
                # rewrite; reset explicitly.
                view._pid_arrival = None
                view._pid_arrival_len = -1
                view._arrival_times = None
                view._read_times = None
                view._arrival_pids = None
                view._read_pids = None
        kept_gaps = [gap for gap in self.health.gaps if gap.end_ns >= cut]
        result["gaps"] = len(self.health.gaps) - len(kept_gaps)
        result["packets"] = len(evicted)
        self.packets_evicted += len(evicted)
        if result["gaps"]:
            self.health.gaps[:] = kept_gaps
            self.gaps_evicted += result["gaps"]
        if evicted or result["gaps"]:
            self._mark_mutated()
        return result
