"""Incremental trace building under a low-watermark sealing barrier.

:class:`IncrementalTrace` *is* a :class:`~repro.core.records.DiagTrace`
that grows in place as telemetry records drain out of a
:class:`~repro.ingest.feed.TelemetryFeed`.  Two invariants make the
result interchangeable with an offline trace:

* **Apply order is the global merge order.**  A record is applied only
  once its timestamp is below the *horizon* — the minimum watermark over
  every stream that can still deliver data — or at the horizon and
  cleared by the name-ordered tie rule (see :meth:`IncrementalTrace._drain`),
  and applied records are sorted by ``(time_ns, stream, seq)``.  Every
  future record on any stream carries a timestamp at or above the horizon
  (streams are time-monotone), so the concatenation of all apply batches
  is one globally sorted sequence no matter how the transport interleaved
  the streams.  On clean input that sequence reproduces the offline
  construction order exactly — packet insertion order, hop list order,
  per-NF stream contents — which is what the bit-identity tests pin.

* **Sealing is conservative.**  Chunk ``k`` (covering
  ``[k*chunk_ns, (k+1)*chunk_ns)``) is *sealed* — safe to diagnose,
  journal and checkpoint — only once the applied horizon has passed its
  end by ``seal_margin_ns``.  The margin buys the diagnosis the same
  look-ahead the offline streaming engine gets from having the whole
  trace: periods of chunk-``k`` victims may extend past the chunk end,
  and sealing early would diagnose them against a still-growing tail.

Degraded telemetry never crashes the builder.  Sequence gaps become
``loss`` :class:`~repro.collector.health.TelemetryGap`\\ s, repeated
sequence numbers are deduplicated, time regressions and malformed
payloads are rejected with gaps, and records whose packet identity never
arrived (the emit was lost) become ``chain-break`` gaps — all feeding the
same :class:`~repro.collector.health.TelemetryHealth` machinery the
tolerant reconstructor uses, so diagnosis confidence degrades instead of
output corrupting.  A stream that stalls while its peers advance past the
*straggler timeout* is quarantined: the barrier stops waiting for it,
chunks seal anyway, and the quarantine gap makes the missing evidence
explicit.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Set, Tuple

from repro.collector.health import TelemetryGap, TelemetryHealth
from repro.core.records import DiagTrace, NFView, PacketHop, PacketView
from repro.errors import IngestError
from repro.ingest.feed import TelemetryFeed
from repro.ingest.records import TelemetryRecord
from repro.nfv.packet import FiveTuple
from repro.time.model import ClockBank, ClockConfig, ClockFault

#: Sentinel for "no chunk telemetry pinned" (None is a valid pin: it
#: means the health state at that chunk's seal cut was still clean).
_UNPINNED = object()


@dataclass
class IngestConfig:
    """Sealing-barrier parameters of one :class:`IncrementalTrace`."""

    #: Chunk width — must match the diagnosing service's ``chunk_ns``.
    chunk_ns: int = 50_000_000
    #: How far the applied horizon must clear a chunk's end before the
    #: chunk seals.  Must cover the longest in-flight residence a victim's
    #: queuing period can extend past the chunk boundary.
    seal_margin_ns: int = 100_000_000
    #: Quarantine a stalled stream once the fastest stream leads it by
    #: this much (None = wait forever; the default for clean transports).
    straggler_timeout_ns: Optional[int] = None
    #: Enable online clock-fault tolerance (None keeps the literal legacy
    #: drain path, byte-identical to pre-clock behaviour).  With a
    #: :class:`~repro.time.model.ClockConfig`, per-stream clock models
    #: repair timestamps, raise typed faults, and widen the sealing
    #: barrier by each stream's uncertainty bound.
    clock: Optional[ClockConfig] = None

    def __post_init__(self) -> None:
        if self.chunk_ns <= 0:
            raise IngestError(f"chunk_ns must be positive: {self.chunk_ns}")
        if self.seal_margin_ns < 0:
            raise IngestError(
                f"seal_margin_ns must be non-negative: {self.seal_margin_ns}"
            )


def _insert_sorted(stream: List[Tuple[int, int]], item: Tuple[int, int]) -> None:
    # Departs (and usually drops) arrive already sorted; arrivals/reads
    # ride inside hop records emitted at depart time, so they can land
    # out of order and need the insort.
    if not stream or item >= stream[-1]:
        stream.append(item)
    else:
        bisect.insort(stream, item)


class IncrementalTrace(DiagTrace):
    """A DiagTrace that grows from live telemetry streams."""

    def __init__(
        self,
        packets: Dict[int, PacketView],
        nfs: Dict[str, NFView],
        upstreams: Dict[str, Set[str]],
        sources: Set[str],
        nf_types: Optional[Dict[str, str]] = None,
        config: Optional[IngestConfig] = None,
    ) -> None:
        super().__init__(
            packets=packets,
            nfs=nfs,
            upstreams=upstreams,
            sources=sources,
            nf_types=nf_types,
        )
        self.config = config or IngestConfig()
        self.health = TelemetryHealth()
        #: Health state frozen at each chunk's seal cut (clocked mode).
        #: Live cumulative health keeps evolving from records *beyond* a
        #: sealed chunk's barrier, and how far beyond depends on delivery
        #: pacing — so diagnosing a chunk against live health would bake
        #: transport timing into the journal bytes.  The snapshot taken
        #: exactly when the admitted prefix first covers the chunk's
        #: barrier is a pure function of the record streams.
        self._chunk_health: Dict[int, Optional[TelemetryHealth]] = {}
        self._next_health_chunk = 0
        #: Per-stream online clock models (None in legacy strict mode).
        self.clock: Optional[ClockBank] = (
            ClockBank(self.config.clock) if self.config.clock is not None else None
        )
        self._next_seq: Dict[str, int] = {}
        self._last_time: Dict[str, int] = {}
        self._ok: Dict[str, int] = {}
        self._lost: Dict[str, int] = {}
        self._excluded: Set[str] = set()
        self._applied_horizon = -1
        self._max_depart_ns = 0
        self._complete = False
        self.records_applied = 0
        self.duplicates = 0
        self.rejects = 0
        #: Health-gap entries and packets evicted by :meth:`prune_before`
        #: (the state itself is gone; the cumulative counts keep
        #: ``ingest_stats`` monotone and are journalled per chunk so
        #: eviction is auditable).
        self.gaps_evicted = 0
        self.packets_evicted = 0
        #: Topological depth per node (sources 0, NFs 1 + max upstream).
        #: Depths strictly increase along any packet path, so they give
        #: each hop a batching-independent position in ``packet.hops``
        #: even when a clock-fault transient lets the pick-min merge
        #: admit a downstream hop before an upstream one (see
        #: :meth:`_apply`).
        self._depth: Dict[str, int] = {name: 0 for name in sources}
        for _ in range(len(upstreams) + 1):
            changed = False
            for nf, preds in upstreams.items():
                depth = 1 + max(
                    (self._depth.get(pred, 0) for pred in preds), default=0
                )
                if self._depth.get(nf) != depth:
                    self._depth[nf] = depth
                    changed = True
            if not changed:
                break

    @classmethod
    def for_topology(
        cls, topology, config: Optional[IngestConfig] = None
    ) -> "IncrementalTrace":
        """Empty trace carrying the same identity ``from_sim_result`` builds."""
        rates = dict(topology.peak_rates_pps())
        nfs = {
            name: NFView(name=name, peak_rate_pps=rates[name])
            for name in topology.nfs
        }
        return cls(
            packets={},
            nfs=nfs,
            upstreams={name: topology.predecessors(name) for name in topology.nfs},
            sources=set(topology.sources),
            nf_types=topology.nf_types(),
            config=config,
        )

    # -- health accounting ------------------------------------------------------

    #: Class-level default so the ``telemetry`` property works during
    #: ``DiagTrace.__init__`` (which assigns the attribute before this
    #: subclass's ``__init__`` body runs).
    _pinned_telemetry = _UNPINNED

    @property
    def telemetry(self):
        """Live health (or None while strict) — or the pinned per-chunk
        snapshot while a chunk diagnosis is in flight."""
        if self._pinned_telemetry is not _UNPINNED:
            return self._pinned_telemetry
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value) -> None:
        self._telemetry = value

    def _seal_barrier_ns(self, index: int) -> int:
        """Horizon value at which chunk ``index`` counts as sealed."""
        return (index + 1) * self.config.chunk_ns + self.config.seal_margin_ns

    def _snapshot_health_through(self, rep_ns: int) -> None:
        """Freeze health for every chunk whose barrier is at/below ``rep_ns``.

        Called before admitting a record whose repaired key reaches a
        pending barrier (and after each drain for barriers no buffered
        record reached): the admitted prefix at that instant is exactly
        the records repairing strictly below the barrier, so the frozen
        state is identical for every delivery pacing.
        """
        while self._seal_barrier_ns(self._next_health_chunk) <= rep_ns:
            if self._telemetry is None:
                snapshot = None
            else:
                health = self.health
                snapshot = TelemetryHealth(
                    completeness=dict(health.completeness),
                    quarantined=set(health.quarantined),
                    gaps=list(health.gaps),
                    retention=dict(health.retention),
                    clock_confidence=dict(health.clock_confidence),
                )
            self._chunk_health[self._next_health_chunk] = snapshot
            self._next_health_chunk += 1

    def telemetry_for_chunk(self, index: int):
        """The health state chunk ``index`` must be diagnosed against.

        Clocked mode returns the seal-cut snapshot (falling back to the
        final state for chunks only sealed by EOS); legacy mode returns
        the live health — its only degradation sources are final by the
        time a chunk seals.  Entries behind ``index`` are dropped:
        diagnosis is sequential, only retries revisit a chunk.
        """
        if self.clock is None:
            return self.telemetry
        for old in [k for k in self._chunk_health if k < index]:
            del self._chunk_health[old]
        if index in self._chunk_health:
            return self._chunk_health[index]
        return self._telemetry

    def pin_chunk_telemetry(self, index: int) -> None:
        """Make ``telemetry`` read chunk ``index``'s seal-cut snapshot."""
        self._pinned_telemetry = _UNPINNED
        self._pinned_telemetry = self.telemetry_for_chunk(index)

    def unpin_chunk_telemetry(self) -> None:
        self._pinned_telemetry = _UNPINNED

    def _degrade(self) -> None:
        """Attach the health object on first degradation (strict until then)."""
        if self._telemetry is None:
            self._telemetry = self.health

    def _account_loss(self, stream: str, count: int) -> None:
        self._lost[stream] = self._lost.get(stream, 0) + count
        ok = self._ok.get(stream, 0)
        lost = self._lost[stream]
        self.health.completeness[stream] = ok / (ok + lost)
        self._degrade()

    def _gap(self, stream: str, start_ns: int, end_ns: int, kind: str, count: int) -> None:
        self.health.gaps.append(
            TelemetryGap(
                nf=stream,
                start_ns=max(0, start_ns),
                end_ns=max(0, start_ns, end_ns),
                kind=kind,
                count=count,
            )
        )
        self._degrade()

    def _reject(self, record: TelemetryRecord, kind: str) -> None:
        self.rejects += 1
        last = self._last_time.get(record.stream, 0)
        self._gap(record.stream, last, record.time_ns, kind, count=1)
        self._account_loss(record.stream, 1)

    # -- ingestion --------------------------------------------------------------

    def _quarantine_stragglers(self, feed: TelemetryFeed) -> None:
        timeout = self.config.straggler_timeout_ns
        if timeout is None:
            return
        watermarks = {
            stream: feed.watermark(stream)
            for stream in feed.buffers
            if stream not in self._excluded
        }
        if not watermarks:
            return
        max_wm = max(watermarks.values())
        for stream, wm in watermarks.items():
            if feed.at_eos(stream):
                continue
            if feed.stalled(stream) and max_wm - wm > timeout:
                self._excluded.add(stream)
                self.health.quarantined.add(stream)
                self._gap(stream, max(0, wm), max_wm, "quarantine", count=0)

    def _effective_watermark(self, stream: str, wm: int) -> int:
        """The stream's watermark on the repaired clock, minus uncertainty.

        This is where clock uncertainty widens the sealing barrier: the
        horizon is the min over effective watermarks, so each stream
        holds the barrier back by exactly its own uncertainty bound — a
        record whose true (repaired) time lands below the horizon can no
        longer be in flight even if the sender's clock overstated it.
        """
        if self.clock is None:
            return wm
        return self.clock.effective_watermark(stream, wm)

    def _stream_floor(self, stream: str, feed: TelemetryFeed) -> int:
        """Lower bound on this stream's future *admission* times.

        The model-based effective watermark alone can deadlock a small
        buffer after a step repair: uncertainty pushes the stream's
        barrier contribution below the repaired times of its own
        buffered records, the heads become ineligible, the full buffer
        backpressures all pulls, and the raw watermark can never
        advance.  But the buffer is FIFO and admission clamps
        monotonically, so no future record from this stream can ever be
        admitted below its buffered head's repaired time — the head's
        repaired time is a sound floor that breaks the cycle.
        """
        wm = self._effective_watermark(stream, feed.watermark(stream))
        if self.clock is not None:
            buffer = feed.buffers[stream]
            if len(buffer):
                wm = max(wm, self._repair_time(stream, buffer.head().time_ns))
        return wm

    def _horizon(self, feed: TelemetryFeed) -> Optional[int]:
        """Min watermark over streams that can still deliver; None = no limit."""
        horizon: Optional[int] = None
        unconstrained = True
        for stream in feed.buffers:
            if stream in self._excluded or feed.at_eos(stream):
                continue
            unconstrained = False
            wm = self._stream_floor(stream, feed)
            if horizon is None or wm < horizon:
                horizon = wm
        if unconstrained:
            return None
        return horizon

    def _drain(self, feed: TelemetryFeed, horizon: Optional[int]) -> List[TelemetryRecord]:
        """Pop, validate and sequence-check records up to the horizon.

        Records strictly below the horizon are always safe.  Records *at*
        the horizon need the tie rule: a future record at the horizon
        timestamp can only come from a live stream whose watermark equals
        the horizon, and it would merge-sort after that stream's buffered
        records (larger seq) but before any larger-named stream's.  So,
        sweeping streams in ascending name order, horizon-timestamp
        records drain until the first live horizon-tied stream is passed —
        everything after it must wait.  Without this rule a burst of
        same-timestamp records larger than the buffer deadlocks the
        barrier: the buffer is full of records at the stream's own
        watermark, nothing is below the horizon, and the stream can never
        be pulled again.
        """
        batch: List[TelemetryRecord] = []
        tie_open = True
        for stream in sorted(feed.buffers):
            buffer = feed.buffers[stream]
            if stream in self._excluded:
                # Quarantined evidence: drained and discarded (the
                # quarantine gap already marks the stream untrusted).
                while buffer:
                    buffer.pop()
                    self.rejects += 1
                continue
            live_at_horizon = (
                horizon is not None
                and not feed.at_eos(stream)
                and feed.watermark(stream) == horizon
            )
            while buffer:
                head = buffer.head()
                if horizon is not None and (
                    head.time_ns > horizon
                    or (head.time_ns == horizon and not tie_open)
                ):
                    break
                record = buffer.pop()
                expected = self._next_seq.get(stream, 0)
                if record.seq < expected:
                    self.duplicates += 1
                    continue
                if record.seq > expected:
                    missing = record.seq - expected
                    self._gap(
                        stream,
                        self._last_time.get(stream, 0),
                        record.time_ns,
                        "loss",
                        count=missing,
                    )
                    self._account_loss(stream, missing)
                self._next_seq[stream] = record.seq + 1
                if record.time_ns < self._last_time.get(stream, 0):
                    self._reject(record, "reorder")
                    continue
                self._last_time[stream] = record.time_ns
                batch.append(record)
            if live_at_horizon:
                # This stream may still deliver more records at exactly
                # the horizon; larger-named streams' horizon records
                # would sort after them, so they stay buffered.
                tie_open = False
        batch.sort(key=lambda record: record.merge_key)
        return batch

    # -- clocked ingestion -------------------------------------------------------
    #
    # With clock models enabled the "pop everything below the horizon,
    # sort, apply" drain no longer works: the sort key is the *repaired*
    # timestamp, and the repair function evolves as records are admitted.
    # Instead records merge one at a time — repeatedly pick the eligible
    # stream head with the minimal repaired key, pop it, and admit it
    # inline (observations strictly after its repair is fixed, so the key
    # used for ordering always equals the time that gets applied).
    #
    # Determinism argument: a stream's model mutates only when one of its
    # own records is admitted, in sequence order, and pair observations
    # read the packet's already-*repaired* source emit (source clocks
    # define the reference plane, and a packet's emit is always admitted
    # before any of its hops can pair).  The repaired key of stream
    # ``s``'s ``k``-th record is therefore a pure function of per-stream
    # record prefixes — independent of transport batching — which is
    # what keeps sealed chunks byte-identical across crash/restart and
    # socket-timing variation.

    def _repair_time(self, stream: str, raw_ns: int) -> int:
        """Raw timestamp → repaired timestamp (model + monotone clamp).

        The clamp against the stream's last *repaired* time guarantees
        per-stream monotonicity even while the model estimate moves, so
        already-sealed chunks can never be contradicted by a later
        repair.  (In clocked mode ``_last_time`` stores repaired times.)
        """
        assert self.clock is not None
        rep = raw_ns - self.clock.offset_at(stream, raw_ns)
        return max(rep, self._last_time.get(stream, 0))

    def _clock_faults(self, stream: str, at_ns: int, faults: List[ClockFault]) -> None:
        """Turn detected faults into gaps, discounts, and quarantine."""
        config = self.config.clock
        for fault in faults:
            discount = (
                config.drift_discount
                if fault.kind == "drift"
                else config.fault_discount
            )
            previous = self.health.clock_confidence.get(stream, 1.0)
            self.health.clock_confidence[stream] = previous * discount
            self._gap(stream, at_ns, at_ns, "clock", count=0)
            if fault.kind == "freeze" and config.freeze_quarantines:
                # A frozen clock carries no timing information, and the
                # barrier must stop waiting for its watermark.
                self._excluded.add(stream)
                self.health.quarantined.add(stream)

    def _admit_clocked(self, record: TelemetryRecord) -> bool:
        """Repair, observe, and apply one popped record (clocked mode)."""
        stream = record.stream
        raw = record.time_ns
        rep = self._repair_time(stream, raw)
        self._last_time[stream] = rep
        local_faults = self.clock.observe_local(stream, raw)
        self._clock_faults(stream, rep, local_faults)
        if stream in self._excluded:
            # The freeze that quarantined the stream fired on this very
            # record: its timestamp is meaningless, discard it.
            self.rejects += 1
            return False
        if (
            record.kind == "hop"
            and len(record.data) == 2
            and 0 <= record.data[0] <= record.data[1] <= raw
        ):
            packet = self.packets.get(record.pid)
            if packet is not None:
                # Huygens pair: the packet's repaired source emit is the
                # TX side, this NF's raw arrival the RX side.  Path
                # latency and queueing only add, so per-window minima
                # trace the stream's offset against the source reference
                # plane.  Grounding at the emit — rather than the
                # nearest upstream hop — matters twice over: the emit is
                # always admitted before any hop of its packet can pair
                # (the pair set is a pure function of per-stream record
                # prefixes, independent of transport batching), and an
                # upstream NF's clock fault cannot leak into this
                # stream's model through the reference.
                pair_faults = self.clock.observe_pair(
                    stream, packet.emitted_ns, record.data[0]
                )
                self._clock_faults(stream, rep, pair_faults)
        delta = rep - raw
        if delta != 0:
            self.clock.repairs += 1
            if record.kind == "hop" and len(record.data) == 2:
                arrival = max(0, record.data[0] + delta)
                read = max(0, record.data[1] + delta)
                read = min(read, rep)
                arrival = min(arrival, read)
                record = dc_replace(record, time_ns=rep, data=(arrival, read))
            else:
                record = dc_replace(record, time_ns=rep)
        return self._apply(record)

    def _drain_clocked(self, feed: TelemetryFeed, horizon: Optional[int]) -> int:
        """Pick-min merge: admit eligible heads in repaired-key order.

        Same tie rule as :meth:`_drain`, on the repaired clock: records
        *at* the horizon drain only for streams named at or below the
        smallest live stream whose effective watermark equals the
        horizon — later-named streams' horizon records could still be
        preceded by that stream's future deliveries.
        """
        tie_limit: Optional[str] = None
        if horizon is not None:
            for stream in sorted(feed.buffers):
                if stream in self._excluded or feed.at_eos(stream):
                    continue
                wm = self._stream_floor(stream, feed)
                if wm == horizon:
                    tie_limit = stream
                    break
        applied = 0
        while True:
            best_key: Optional[Tuple[int, str, int]] = None
            for stream in feed.buffers:
                if stream in self._excluded:
                    continue
                buffer = feed.buffers[stream]
                if not buffer:
                    continue
                head = buffer.head()
                rep = self._repair_time(stream, head.time_ns)
                if horizon is not None:
                    if rep > horizon:
                        continue
                    if rep == horizon and tie_limit is not None and stream > tie_limit:
                        continue
                key = (rep, stream, head.seq)
                if best_key is None or key < best_key:
                    best_key = key
            if best_key is None:
                break
            # Freeze per-chunk health before the admitted prefix crosses
            # a pending seal barrier (see _snapshot_health_through).
            self._snapshot_health_through(best_key[0])
            stream = best_key[1]
            record = feed.buffers[stream].pop()
            expected = self._next_seq.get(stream, 0)
            if record.seq < expected:
                self.duplicates += 1
                continue
            if record.seq > expected:
                missing = record.seq - expected
                self._gap(
                    stream,
                    self._last_time.get(stream, 0),
                    best_key[0],
                    "loss",
                    count=missing,
                )
                self._account_loss(stream, missing)
            self._next_seq[stream] = record.seq + 1
            if self._admit_clocked(record):
                applied += 1
                self._ok[stream] = self._ok.get(stream, 0) + 1
                if stream in self.health.completeness:
                    ok = self._ok[stream]
                    lost = self._lost.get(stream, 0)
                    self.health.completeness[stream] = ok / (ok + lost)
        for stream in sorted(self._excluded):
            buffer = feed.buffers.get(stream)
            if buffer is None:
                continue
            while buffer:
                buffer.pop()
                self.rejects += 1
        return applied

    def _ingest_clocked(self, feed: TelemetryFeed) -> int:
        self._quarantine_stragglers(feed)
        horizon = self._horizon(feed)
        applied = self._drain_clocked(feed, horizon)
        self.records_applied += applied
        if horizon is not None and horizon > self._applied_horizon:
            self._applied_horizon = horizon
            # Chunks the horizon sealed without any buffered record at or
            # past their barrier: the admitted prefix is still exactly
            # "everything below the barrier" (no future record can admit
            # below the horizon), so the cut is the same one the in-drain
            # trigger would have taken.
            self._snapshot_health_through(self._applied_horizon)
        if horizon is None and all(
            stream in self._excluded
            or (feed.at_eos(stream) and not feed.buffers[stream])
            for stream in feed.buffers
        ):
            self._complete = True
        return applied

    def _apply(self, record: TelemetryRecord) -> bool:
        stream = record.stream
        if record.pid < 0:
            self._reject(record, "loss")
            return False
        if record.kind == "emit":
            if stream not in self.sources or len(record.data) != 5:
                self._reject(record, "loss")
                return False
            if record.pid in self.packets:
                self._reject(record, "loss")
                return False
            self.packets[record.pid] = PacketView(
                pid=record.pid,
                flow=FiveTuple(*record.data),
                source=stream,
                emitted_ns=record.time_ns,
            )
            self._mark_mutated()  # cached columns must rebuild
            return True
        view = self.nfs.get(stream)
        if view is None:
            self._reject(record, "loss")
            return False
        packet = self.packets.get(record.pid)
        if packet is None:
            # The emit that named this packet never arrived: the chain is
            # broken and the evidence cannot be attached anywhere.
            self._reject(record, "chain-break")
            return False
        if record.kind == "hop":
            if len(record.data) != 2:
                self._reject(record, "loss")
                return False
            arrival_ns, read_ns = record.data
            if not 0 <= arrival_ns <= read_ns <= record.time_ns:
                self._reject(record, "loss")
                return False
            hop = PacketHop(
                nf=stream,
                arrival_ns=arrival_ns,
                read_ns=read_ns,
                depart_ns=record.time_ns,
            )
            hops = packet.hops
            depth = self._depth.get(stream, 0)
            # Hops normally arrive in path order and this is a plain
            # append.  During a clock-fault transient the merge can admit
            # a downstream hop first (the faulted stream's floor briefly
            # over-advances the horizon); placing each hop at its
            # topological position keeps the packet's path order — and
            # therefore the sealed bytes — independent of that race.
            index = len(hops)
            while index > 0 and self._depth.get(hops[index - 1].nf, 0) > depth:
                index -= 1
            if index == len(hops):
                hops.append(hop)
            else:
                hops.insert(index, hop)
            _insert_sorted(view.arrivals, (arrival_ns, record.pid))
            _insert_sorted(view.reads, (read_ns, record.pid))
            _insert_sorted(view.departs, (record.time_ns, record.pid))
            if record.time_ns > self._max_depart_ns:
                self._max_depart_ns = record.time_ns
        elif record.kind == "drop":
            packet.dropped_at = stream
            packet.dropped_ns = record.time_ns
            _insert_sorted(view.drops, (record.time_ns, record.pid))
        else:  # exit
            packet.exited_ns = record.time_ns
        self._mark_mutated()  # cached columns must rebuild
        return True

    def ingest(self, feed: TelemetryFeed) -> int:
        """Drain and apply every record below the current barrier.

        Returns the number of records applied.  Call after each
        ``feed.pump()``; safe to call when nothing advanced.
        """
        if self.clock is not None:
            return self._ingest_clocked(feed)
        self._quarantine_stragglers(feed)
        horizon = self._horizon(feed)
        applied = 0
        for record in self._drain(feed, horizon):
            if self._apply(record):
                applied += 1
                self._ok[record.stream] = self._ok.get(record.stream, 0) + 1
                if record.stream in self.health.completeness:
                    ok = self._ok[record.stream]
                    lost = self._lost.get(record.stream, 0)
                    self.health.completeness[record.stream] = ok / (ok + lost)
        self.records_applied += applied
        if horizon is not None and horizon > self._applied_horizon:
            self._applied_horizon = horizon
        if horizon is None and all(
            stream in self._excluded
            or (feed.at_eos(stream) and not feed.buffers[stream])
            for stream in feed.buffers
        ):
            self._complete = True
        return applied

    # -- sealing ----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Every stream fully delivered (or quarantined) and applied."""
        return self._complete

    def n_chunks(self) -> int:
        """Chunk count of the trace built *so far* (grows until complete)."""
        return max(0, self._max_depart_ns) // self.config.chunk_ns + 1

    def sealed_chunks(self) -> int:
        """Chunks safe to diagnose: barrier-cleared, or all of them at EOS."""
        if self._complete:
            return self.n_chunks()
        if self._applied_horizon < 0:
            return 0
        sealed = (self._applied_horizon - self.config.seal_margin_ns) // self.config.chunk_ns
        return max(0, sealed)

    def ingest_stats(self) -> Dict[str, int]:
        """Pure-int ingestion counters (checkpoint/stats safe).

        ``gaps`` counts every gap ever recorded — pruning moves old
        entries from the live list into ``gaps_evicted``, keeping the
        total monotone across a week of eviction.
        """
        stats = {
            "records_applied": self.records_applied,
            "duplicates": self.duplicates,
            "rejects": self.rejects,
            "gaps": len(self.health.gaps) + self.gaps_evicted,
            "quarantined": len(self.health.quarantined),
            "evictions": self.packets_evicted + self.gaps_evicted,
        }
        if self.clock is not None:
            stats.update(self.clock.stats())
        return stats

    # -- pruning (bounded memory) ----------------------------------------------

    def _queue_empty_cut(self, view: NFView, cut_ns: int) -> int:
        """Largest ``b <= cut_ns`` where ``view``'s queue is empty at ``b``.

        Queue depth just before ``b`` is ``#{arrivals < b} - #{reads < b}``
        (drops live in a separate stream and never enter the balance).
        When it is positive, any empty point must see at most ``j`` (the
        read count) arrivals, i.e. lie at or below arrival ``j``'s
        timestamp — jump there and re-test.  The arrival index strictly
        decreases each round, so this terminates (at 0 in the worst case).
        """
        b = cut_ns
        while b > 0:
            i = bisect.bisect_left(view.arrivals, (b, -1))
            j = bisect.bisect_left(view.reads, (b, -1))
            if i == j:
                return b
            b = view.arrivals[j][0]
        return 0

    def safe_cut(self, cut_ns: int) -> int:
        """Lower ``cut_ns`` until no NF has a busy period spanning it.

        Pruning is output-invariant only if no queuing interacts across
        the cut: a packet discarded behind the cut must not change any
        future window's queue depths or busy-period structure.  At a
        queue-empty instant every earlier arrival has been read, so
        removing terminated packets wholly behind it shifts the arrival
        and read cumulative counts *equally* — depths at and after the
        cut are untouched.  Under sustained overload the cut can regress
        far behind the nominal horizon; memory then grows with the busy
        period, which is the price of exactness (and an overload signal
        in its own right).
        """
        cut = cut_ns
        for view in self.nfs.values():
            if cut <= 0:
                return 0
            cut = self._queue_empty_cut(view, cut)
        return max(0, cut)

    def prune_before(self, cut_ns: int) -> Dict[str, int]:
        """Evict state the diagnosis of future chunks can never touch.

        Drops terminated packets (exited or dropped) whose every event
        lies strictly before the queue-empty-safe cut, their per-NF view
        events, and health gaps that ended before the cut (quarantine
        gaps of a permanently dead stream included — the stream itself
        stays in ``health.quarantined``, which is bounded by the stream
        count).  Returns ``{"cut_ns", "packets", "gaps"}``.

        The prune is a pure function of (trace state, cut): replaying it
        at the same chunk boundary on a crash-restored twin yields the
        identical pruned state, which is what keeps bounded replay
        byte-identical to the full-replay oracle.
        """
        cut = self.safe_cut(cut_ns)
        result = {"cut_ns": cut, "packets": 0, "gaps": 0}
        if cut <= 0:
            return result
        evicted: Set[int] = set()
        for pid, packet in self.packets.items():
            if packet.exited_ns < 0 and packet.dropped_at is None:
                continue  # still in flight: future records may attach
            last = max(
                packet.emitted_ns,
                packet.exited_ns,
                packet.dropped_ns,
                max((hop.depart_ns for hop in packet.hops), default=0),
            )
            if last < cut:
                evicted.add(pid)
        for pid in evicted:
            del self.packets[pid]
        if evicted:
            for view in self.nfs.values():
                view.arrivals[:] = [
                    e for e in view.arrivals if e[1] not in evicted
                ]
                view.reads[:] = [e for e in view.reads if e[1] not in evicted]
                view.departs[:] = [
                    e for e in view.departs if e[1] not in evicted
                ]
                view.drops[:] = [e for e in view.drops if e[1] not in evicted]
                # Length-based cache invalidation can miss an equal-length
                # rewrite; reset explicitly.
                view._pid_arrival = None
                view._pid_arrival_len = -1
                view._arrival_times = None
                view._read_times = None
                view._arrival_pids = None
                view._read_pids = None
        kept_gaps = [gap for gap in self.health.gaps if gap.end_ns >= cut]
        result["gaps"] = len(self.health.gaps) - len(kept_gaps)
        result["packets"] = len(evicted)
        self.packets_evicted += len(evicted)
        if result["gaps"]:
            self.health.gaps[:] = kept_gaps
            self.gaps_evicted += result["gaps"]
        if evicted or result["gaps"]:
            self._mark_mutated()
        # Seal-cut health snapshots for chunks behind the cut can never
        # be diagnosed again (the cut trails the replay-retain boundary).
        for index in [k for k in self._chunk_health if k < cut // self.config.chunk_ns]:
            del self._chunk_health[index]
        return result
