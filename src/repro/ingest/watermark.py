"""Watermark snapshots: bounded crash-recovery replay for live ingestion.

Without this module a restarted service re-ingests every transport from
record zero — deterministic (that is what makes recovery byte-identical)
but O(run length): after a week of operation a restart replays a week of
telemetry before diagnosing its first new chunk.  A *watermark snapshot*
captures the complete ingest-side state at a chunk boundary:

* **transport cursors** — where each per-stream pull left off (plus the
  fault-injection RNG of a :class:`~repro.ingest.feed.FlakyTransport`,
  so the replayed fault schedule continues bit-exactly);
* **feed state** — every buffered-but-unapplied record, per-stream
  watermarks and stall counters, accumulated :class:`FeedStats`, pending
  shed accounting, and the backoff RNG;
* **builder state** — the pruned trace suffix (packets + health), the
  sequence/time/loss bookkeeping per stream, and the sealing horizon.

Restoring a snapshot into a freshly constructed source reproduces the
exact in-memory state the crashed process held at that boundary, so
recovery replays only the records the transport delivered *after* the
snapshot — O(seal window), independent of run length.  The service pins
this against full-replay oracle runs: both paths must produce
byte-identical journals.

Capture is cooperative: a transport that cannot report its position
(``snapshot_state`` missing and not one of the known wrappers) makes
:func:`capture_source_state` return None and the service falls back to
full replay — bounded replay is an optimisation, never a correctness
requirement.

Everything in a snapshot is pure JSON (ints round-trip exactly; the
NumPy bit-generator state dicts are JSON-clean the same way the service
checkpoint already relies on), so snapshots ride the standard
:class:`~repro.service.checkpoint.Checkpointer` machinery: versioned
generations, CRC validation, atomic commit, recovery ladder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.collector.health import TelemetryGap, TelemetryHealth
from repro.core.records import PacketHop, PacketView
from repro.errors import IngestError
from repro.ingest.feed import (
    DeadStreamTransport,
    FeedStats,
    FlakyTransport,
    SimTransport,
    TelemetryFeed,
)
from repro.ingest.incremental import IncrementalTrace
from repro.ingest.records import TelemetryRecord
from repro.nfv.packet import FiveTuple
from repro.time.model import ClockBank

#: Bumped when the snapshot layout changes; mismatches fall back to full
#: replay instead of mis-restoring.  Version 2 added the clock-model
#: state (per-stream envelopes, fault ledger, clock confidence).
SNAPSHOT_VERSION = 2


# -- record wire format ---------------------------------------------------------


def record_to_wire(record: TelemetryRecord) -> list:
    return [
        record.stream,
        record.seq,
        record.kind,
        record.time_ns,
        record.pid,
        list(record.data),
    ]


def record_from_wire(wire) -> TelemetryRecord:
    stream, seq, kind, time_ns, pid, data = wire
    return TelemetryRecord(
        stream=stream,
        seq=int(seq),
        kind=kind,
        time_ns=int(time_ns),
        pid=int(pid),
        data=tuple(int(x) for x in data),
    )


# -- transports -----------------------------------------------------------------


def capture_transport_state(transport) -> Optional[dict]:
    """Position snapshot of a transport, or None when unsupported.

    The known transports are handled structurally (wrappers recurse into
    their inner transport); anything else may opt in by exposing its own
    ``snapshot_state()``/``restore_state()`` pair returning pure JSON.
    """
    if isinstance(transport, SimTransport):
        return {"kind": "sim", "cursors": dict(transport._cursor)}
    if isinstance(transport, FlakyTransport):
        inner = capture_transport_state(transport.inner)
        if inner is None:
            return None
        return {
            "kind": "flaky",
            "inner": inner,
            "rng": transport._rng.bit_generator.state,
            "connected": transport._connected,
        }
    if isinstance(transport, DeadStreamTransport):
        inner = capture_transport_state(transport.inner)
        if inner is None:
            return None
        return {"kind": "dead-wrapper", "inner": inner}
    snapshot = getattr(transport, "snapshot_state", None)
    if snapshot is None:
        return None
    return snapshot()


def restore_transport_state(transport, state: dict) -> None:
    kind = state.get("kind")
    if isinstance(transport, SimTransport):
        if kind != "sim":
            raise IngestError(f"transport snapshot kind mismatch: {kind!r}")
        cursors = state["cursors"]
        if set(cursors) != set(transport._cursor):
            raise IngestError(
                "transport snapshot stream set does not match: "
                f"{sorted(cursors)} vs {sorted(transport._cursor)}"
            )
        for stream, cursor in cursors.items():
            transport._cursor[stream] = int(cursor)
        return
    if isinstance(transport, FlakyTransport):
        if kind != "flaky":
            raise IngestError(f"transport snapshot kind mismatch: {kind!r}")
        restore_transport_state(transport.inner, state["inner"])
        transport._rng.bit_generator.state = state["rng"]
        transport._connected = bool(state["connected"])
        return
    if isinstance(transport, DeadStreamTransport):
        if kind != "dead-wrapper":
            raise IngestError(f"transport snapshot kind mismatch: {kind!r}")
        restore_transport_state(transport.inner, state["inner"])
        return
    restore = getattr(transport, "restore_state", None)
    if restore is None:
        raise IngestError(
            f"transport {type(transport).__name__} cannot restore snapshots"
        )
    restore(state)


# -- feed -----------------------------------------------------------------------


def capture_feed_state(feed: TelemetryFeed) -> Optional[dict]:
    transport = capture_transport_state(feed.transport)
    if transport is None:
        return None
    buffers = {}
    for stream, buffer in feed.buffers.items():
        records, watermark = buffer.snapshot()
        buffers[stream] = {
            "watermark": watermark,
            "records": [record_to_wire(r) for r in records],
        }
    return {
        "transport": transport,
        "buffers": buffers,
        "stats": feed.stats.to_payload(),
        "stalls": dict(feed._stalls),
        "pending_sheds": [list(shed) for shed in feed.pending_sheds],
        "rng": feed._rng.bit_generator.state,
    }


def restore_feed_state(feed: TelemetryFeed, state: dict) -> None:
    if set(state["buffers"]) != set(feed.buffers):
        raise IngestError(
            "feed snapshot stream set does not match the transport's: "
            f"{sorted(state['buffers'])} vs {sorted(feed.buffers)}"
        )
    restore_transport_state(feed.transport, state["transport"])
    for stream, snap in state["buffers"].items():
        feed.buffers[stream].restore(
            [record_from_wire(w) for w in snap["records"]],
            int(snap["watermark"]),
        )
    feed.stats = FeedStats.from_payload(state["stats"])
    feed._stalls = {
        stream: int(count) for stream, count in state["stalls"].items()
    }
    feed.pending_sheds = [
        (shed[0], int(shed[1]), int(shed[2]), shed[3])
        for shed in state["pending_sheds"]
    ]
    feed._rng.bit_generator.state = state["rng"]


# -- builder --------------------------------------------------------------------


def _packet_to_wire(packet: PacketView) -> list:
    return [
        packet.pid,
        [
            packet.flow.src_ip,
            packet.flow.dst_ip,
            packet.flow.src_port,
            packet.flow.dst_port,
            packet.flow.proto,
        ],
        packet.source,
        packet.emitted_ns,
        [[h.nf, h.arrival_ns, h.read_ns, h.depart_ns] for h in packet.hops],
        packet.dropped_at,
        packet.dropped_ns,
        packet.exited_ns,
    ]


def _packet_from_wire(wire) -> PacketView:
    pid, flow, source, emitted_ns, hops, dropped_at, dropped_ns, exited_ns = wire
    packet = PacketView(
        pid=int(pid),
        flow=FiveTuple(*(int(x) for x in flow)),
        source=source,
        emitted_ns=int(emitted_ns),
    )
    for nf, arrival_ns, read_ns, depart_ns in hops:
        packet.hops.append(
            PacketHop(
                nf=nf,
                arrival_ns=int(arrival_ns),
                read_ns=int(read_ns),
                depart_ns=int(depart_ns),
            )
        )
    packet.dropped_at = dropped_at
    packet.dropped_ns = int(dropped_ns)
    packet.exited_ns = int(exited_ns)
    return packet


def _builder_config_payload(config) -> dict:
    return {
        "chunk_ns": config.chunk_ns,
        "seal_margin_ns": config.seal_margin_ns,
        "straggler_timeout_ns": config.straggler_timeout_ns,
        "clock": None if config.clock is None else config.clock.to_payload(),
    }


def _check_builder_config(builder: IncrementalTrace, config: dict) -> None:
    if config != _builder_config_payload(builder.config):
        raise IngestError(
            f"ingest snapshot config {config} does not match the builder's"
        )


def _health_to_wire(health) -> Optional[dict]:
    """Wire image of one (possibly absent) frozen TelemetryHealth."""
    if health is None:
        return None
    return {
        "completeness": dict(health.completeness),
        "quarantined": sorted(health.quarantined),
        "retention": dict(health.retention),
        "clock_confidence": dict(health.clock_confidence),
        "gaps": [
            [gap.nf, gap.start_ns, gap.end_ns, gap.kind, gap.count]
            for gap in health.gaps
        ],
    }


def _health_from_wire(wire) -> Optional[TelemetryHealth]:
    if wire is None:
        return None
    return TelemetryHealth(
        completeness={s: float(v) for s, v in wire["completeness"].items()},
        quarantined=set(wire["quarantined"]),
        gaps=[
            TelemetryGap(
                nf=nf,
                start_ns=int(start_ns),
                end_ns=int(end_ns),
                kind=kind,
                count=int(count),
            )
            for nf, start_ns, end_ns, kind, count in wire["gaps"]
        ],
        retention={s: float(v) for s, v in wire["retention"].items()},
        clock_confidence={s: float(v) for s, v in wire["clock_confidence"].items()},
    )


def capture_builder_state(builder: IncrementalTrace) -> dict:
    """Full JSON image of an :class:`IncrementalTrace`'s mutable state.

    Packets are stored in dict insertion order (= global apply order,
    which pruning preserves) so the restored trace iterates identically.
    Per-NF view streams are *not* stored: every view event belongs to a
    retained packet's hop or drop, so they are rebuilt — and re-sorted
    into the same ``(time, pid)`` order — from the packet list.
    """
    health = builder.health
    return {
        "config": _builder_config_payload(builder.config),
        "clock": None if builder.clock is None else builder.clock.to_payload(),
        "next_seq": dict(builder._next_seq),
        "last_time": dict(builder._last_time),
        "ok": dict(builder._ok),
        "lost": dict(builder._lost),
        "excluded": sorted(builder._excluded),
        "applied_horizon": builder._applied_horizon,
        "max_depart_ns": builder._max_depart_ns,
        "complete": builder._complete,
        "records_applied": builder.records_applied,
        "duplicates": builder.duplicates,
        "rejects": builder.rejects,
        "gaps_evicted": builder.gaps_evicted,
        "packets_evicted": builder.packets_evicted,
        "health": {
            "completeness": dict(health.completeness),
            "quarantined": sorted(health.quarantined),
            "retention": dict(health.retention),
            "clock_confidence": dict(health.clock_confidence),
            "gaps": [
                [gap.nf, gap.start_ns, gap.end_ns, gap.kind, gap.count]
                for gap in health.gaps
            ],
            "degraded": builder.telemetry is not None,
        },
        # Seal-cut health snapshots for sealed-but-undiagnosed chunks:
        # a restored service diagnoses those chunks without re-crossing
        # their barriers, so the cuts must travel with the state.
        "chunk_health": [
            [index, _health_to_wire(snapshot)]
            for index, snapshot in sorted(builder._chunk_health.items())
        ],
        "next_health_chunk": builder._next_health_chunk,
        "packets": [
            _packet_to_wire(packet) for packet in builder.packets.values()
        ],
    }


def restore_builder_state(builder: IncrementalTrace, state: dict) -> None:
    """Restore a snapshot into a freshly constructed (empty) builder."""
    _check_builder_config(builder, state["config"])
    if builder.packets or builder.records_applied:
        raise IngestError("ingest snapshots restore into empty builders only")
    for wire in state["packets"]:
        packet = _packet_from_wire(wire)
        if set(hop.nf for hop in packet.hops) - set(builder.nfs):
            raise IngestError(
                f"snapshot packet {packet.pid} visits unknown NFs"
            )
        builder.packets[packet.pid] = packet
        for hop in packet.hops:
            view = builder.nfs[hop.nf]
            view.arrivals.append((hop.arrival_ns, packet.pid))
            view.reads.append((hop.read_ns, packet.pid))
            view.departs.append((hop.depart_ns, packet.pid))
        if packet.dropped_at is not None:
            builder.nfs[packet.dropped_at].drops.append(
                (packet.dropped_ns, packet.pid)
            )
    for view in builder.nfs.values():
        view.arrivals.sort()
        view.reads.sort()
        view.departs.sort()
        view.drops.sort()
    builder._next_seq = {s: int(v) for s, v in state["next_seq"].items()}
    builder._last_time = {s: int(v) for s, v in state["last_time"].items()}
    builder._ok = {s: int(v) for s, v in state["ok"].items()}
    builder._lost = {s: int(v) for s, v in state["lost"].items()}
    builder._excluded = set(state["excluded"])
    builder._applied_horizon = int(state["applied_horizon"])
    builder._max_depart_ns = int(state["max_depart_ns"])
    builder._complete = bool(state["complete"])
    builder.records_applied = int(state["records_applied"])
    builder.duplicates = int(state["duplicates"])
    builder.rejects = int(state["rejects"])
    builder.gaps_evicted = int(state["gaps_evicted"])
    builder.packets_evicted = int(state["packets_evicted"])
    health = builder.health
    health.completeness.clear()
    health.completeness.update(
        {s: float(v) for s, v in state["health"]["completeness"].items()}
    )
    health.quarantined.clear()
    health.quarantined.update(state["health"]["quarantined"])
    health.retention.clear()
    health.retention.update(
        {s: float(v) for s, v in state["health"]["retention"].items()}
    )
    health.clock_confidence.clear()
    health.clock_confidence.update(
        {
            s: float(v)
            for s, v in state["health"].get("clock_confidence", {}).items()
        }
    )
    clock_state = state.get("clock")
    builder.clock = (
        None if clock_state is None else ClockBank.from_payload(clock_state)
    )
    health.gaps[:] = [
        TelemetryGap(
            nf=nf,
            start_ns=int(start_ns),
            end_ns=int(end_ns),
            kind=kind,
            count=int(count),
        )
        for nf, start_ns, end_ns, kind, count in state["health"]["gaps"]
    ]
    builder.telemetry = health if state["health"]["degraded"] else None
    builder._chunk_health = {
        int(index): _health_from_wire(wire)
        for index, wire in state.get("chunk_health", [])
    }
    builder._next_health_chunk = int(state.get("next_health_chunk", 0))
    builder._mark_mutated()


# -- whole-source capture -------------------------------------------------------


def capture_source_state(source) -> Optional[dict]:
    """Snapshot a live source's ingest state, or None when unsupported.

    The source must expose ``feed``, ``builder``, ``_sheds`` and
    ``_idle_pumps`` (the :class:`~repro.service.source.LiveTraceSource`
    shape); the transport must be position-snapshottable.
    """
    feed = getattr(source, "feed", None)
    builder = getattr(source, "builder", None)
    if feed is None or builder is None:
        return None
    feed_state = capture_feed_state(feed)
    if feed_state is None:
        return None
    return {
        "version": SNAPSHOT_VERSION,
        "feed": feed_state,
        "builder": capture_builder_state(builder),
        "sheds": [list(shed) for shed in source._sheds],
        "idle_pumps": source._idle_pumps,
    }


def restore_source_state(source, state: dict) -> None:
    """Restore a captured snapshot into a freshly constructed source.

    All structural validation (version, stream sets, builder config and
    emptiness) happens *before* the first mutation: a rejected snapshot
    leaves the source pristine, so the caller can fall back — to an older
    snapshot generation or to a full transport replay — cleanly.
    """
    if state.get("version") != SNAPSHOT_VERSION:
        raise IngestError(
            f"unsupported ingest snapshot version {state.get('version')!r}"
        )
    builder = source.builder
    _check_builder_config(builder, state["builder"]["config"])
    if builder.packets or builder.records_applied:
        raise IngestError("ingest snapshots restore into empty builders only")
    if set(state["feed"]["buffers"]) != set(source.feed.buffers):
        raise IngestError(
            "feed snapshot stream set does not match the transport's: "
            f"{sorted(state['feed']['buffers'])} vs {sorted(source.feed.buffers)}"
        )
    restore_feed_state(source.feed, state["feed"])
    restore_builder_state(source.builder, state["builder"])
    source._sheds = [
        (shed[0], int(shed[1]), int(shed[2]), shed[3])
        for shed in state["sheds"]
    ]
    source._idle_pumps = int(state["idle_pumps"])
