"""Live telemetry ingestion: records, bounded feeds, incremental traces.

The pipeline is ``transport -> TelemetryFeed -> IncrementalTrace``:
records pulled from per-stream transports land in bounded buffers
(backpressure or accounted shedding, never unbounded memory), then drain
into a growing :class:`~repro.core.records.DiagTrace` behind a
low-watermark sealing barrier.  ``repro.service`` drives the loop and
diagnoses each chunk as it seals.
"""

from repro.ingest.records import (
    RECORD_KINDS,
    TelemetryRecord,
    drop_record,
    emit_record,
    exit_record,
    hop_record,
)
from repro.ingest.feed import (
    DeadStreamTransport,
    FeedConfig,
    FeedStats,
    FlakyTransport,
    IngestBuffer,
    SimTransport,
    TelemetryFeed,
)
from repro.ingest.incremental import IncrementalTrace, IngestConfig
from repro.ingest.watermark import (
    SNAPSHOT_VERSION,
    capture_source_state,
    restore_source_state,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "capture_source_state",
    "restore_source_state",
    "RECORD_KINDS",
    "TelemetryRecord",
    "drop_record",
    "emit_record",
    "exit_record",
    "hop_record",
    "DeadStreamTransport",
    "FeedConfig",
    "FeedStats",
    "FlakyTransport",
    "IngestBuffer",
    "SimTransport",
    "TelemetryFeed",
    "IncrementalTrace",
    "IngestConfig",
]
