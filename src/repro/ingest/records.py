"""Raw telemetry records: what live NFs ship to the ingestion layer.

One :class:`TelemetryRecord` is one event observed at one *stream* — a
traffic source or an NF.  Streams are the unit of ordering and loss
accounting: within a stream, records carry consecutive sequence numbers
and non-decreasing timestamps, so the builder can detect drops (sequence
gaps), duplicates (repeated sequence numbers) and garbling (time running
backwards) without any global coordination.  Across streams nothing is
assumed: the watermark barrier in :mod:`repro.ingest.incremental` is what
turns per-stream order into a globally consistent trace prefix.

Record kinds mirror what :meth:`DiagTrace.from_sim_result` consumes:

``emit``
    A source put a packet on the wire (carries the flow five-tuple).
    Creates the packet's identity; stream = the source name.
``hop``
    A packet finished one NF visit.  Emitted at *depart* time and carries
    the earlier arrival/read timestamps, so one record per hop suffices
    and per-stream time stays monotone (an NF departs packets in event
    order).  Stream = the NF name.
``drop``
    The NF's input queue rejected the packet.  Stream = the NF name.
``exit``
    The packet left the topology.  Stream = the last NF on its path
    (exit happens at depart time there, ordered after the hop record by
    sequence number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import IngestError

#: Valid record kinds, in no particular order.
RECORD_KINDS = ("emit", "hop", "drop", "exit")


@dataclass(frozen=True)
class TelemetryRecord:
    """One event on one stream's telemetry feed.

    ``time_ns`` is the stream-monotone timestamp: emit time for ``emit``,
    depart time for ``hop``, drop time for ``drop``, exit time for
    ``exit``.  ``data`` is the kind-specific payload: the flow five-tuple
    ints for ``emit``, ``(arrival_ns, read_ns)`` for ``hop``, empty
    otherwise.
    """

    stream: str
    seq: int
    kind: str
    time_ns: int
    pid: int
    data: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise IngestError(f"unknown telemetry record kind {self.kind!r}")

    @property
    def merge_key(self) -> Tuple[int, str, int]:
        """Global apply order: time, then stream name, then sequence.

        Matches the event-loop tie order of the simulator when sources
        are registered in name order, which is what makes live trace
        construction reproduce the offline packet insertion order.
        """
        return (self.time_ns, self.stream, self.seq)


def emit_record(
    stream: str, seq: int, time_ns: int, pid: int, flow_tuple: Tuple[int, ...]
) -> TelemetryRecord:
    return TelemetryRecord(
        stream=stream, seq=seq, kind="emit", time_ns=time_ns, pid=pid,
        data=tuple(flow_tuple),
    )


def hop_record(
    stream: str, seq: int, pid: int, arrival_ns: int, read_ns: int, depart_ns: int
) -> TelemetryRecord:
    return TelemetryRecord(
        stream=stream, seq=seq, kind="hop", time_ns=depart_ns, pid=pid,
        data=(arrival_ns, read_ns),
    )


def drop_record(stream: str, seq: int, time_ns: int, pid: int) -> TelemetryRecord:
    return TelemetryRecord(
        stream=stream, seq=seq, kind="drop", time_ns=time_ns, pid=pid
    )


def exit_record(stream: str, seq: int, time_ns: int, pid: int) -> TelemetryRecord:
    return TelemetryRecord(
        stream=stream, seq=seq, kind="exit", time_ns=time_ns, pid=pid
    )
