"""Per-pipeline socket listeners for a fleet deployment.

A fleet supervisor runs many pipelines; with the network ingestion plane
each pipeline gets its *own* :class:`~repro.net.server.SocketIngestServer`
— collectors for NF group A must not share a connection (or a credit
pool, or a failure domain) with group B.  :class:`FleetListeners` owns
that set: it opens one server per pipeline, hands out the matching
:class:`~repro.fleet.supervisor.PipelineSpec` source factories (each run
builds a fresh feed + builder over the server's pull transport — the
crash-restart model the supervisor already expects), and wires every
server into a :class:`~repro.service.health.HealthRegistry` so the
``transport`` report shows live per-stream state for the whole fleet.

The servers outlive individual pipeline runs on purpose: a pipeline that
crashes and restarts re-ingests from its server's still-connected
senders (which replay from their own record logs), while the listening
socket — the thing remote collectors hold an address for — never moves.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.errors import IngestError
from repro.ingest.feed import FeedConfig, TelemetryFeed
from repro.ingest.incremental import IncrementalTrace, IngestConfig
from repro.net.server import ServerConfig, SocketIngestServer
from repro.service.source import LiveTraceSource


class FleetListeners:
    """One ingest server per pipeline, plus their source factories.

    ``topologies`` maps pipeline name -> the
    :class:`~repro.nfv.topology.Topology` whose streams that pipeline
    ingests; every pipeline listens on its own ephemeral TCP port
    (``addresses`` exposes them for collectors), or on its own
    Unix-domain socket when ``socket_dir`` is given.
    """

    def __init__(
        self,
        topologies: Mapping[str, object],
        ingest_config: IngestConfig,
        feed_config: Optional[FeedConfig] = None,
        server_config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        socket_dir=None,
    ) -> None:
        if not topologies:
            raise IngestError("a fleet needs at least one pipeline")
        self.ingest_config = ingest_config
        self.feed_config = feed_config or FeedConfig()
        self._topologies = dict(topologies)
        self.servers: Dict[str, SocketIngestServer] = {}
        for name, topology in sorted(self._topologies.items()):
            streams = self._streams_of(topology)
            if socket_dir is not None:
                self.servers[name] = SocketIngestServer(
                    streams,
                    path=str(socket_dir / f"{name}.sock"),
                    config=server_config,
                )
            else:
                self.servers[name] = SocketIngestServer(
                    streams, host=host, config=server_config
                )

    @staticmethod
    def _streams_of(topology) -> Sequence[str]:
        return tuple(sorted(topology.nfs)) + tuple(sorted(topology.sources))

    @property
    def addresses(self) -> Dict[str, object]:
        """Pipeline name -> the address collectors should connect to."""
        return {name: server.address for name, server in self.servers.items()}

    def source_factory(self, pipeline: str) -> Callable[[], LiveTraceSource]:
        """A zero-arg factory for ``PipelineSpec.source``: every call —
        i.e. every (re)start of the pipeline — builds a fresh feed and
        builder over the same listening server."""
        server = self.servers[pipeline]
        topology = self._topologies[pipeline]

        def build() -> LiveTraceSource:
            feed = TelemetryFeed(server.transport(), self.feed_config)
            builder = IncrementalTrace.for_topology(
                topology, self.ingest_config
            )
            return LiveTraceSource(feed, builder)

        return build

    def attach_to(self, registry) -> None:
        """Wire every server into a health registry's transport report."""
        for name, server in self.servers.items():
            registry.attach_transport(name, server)

    def transport_stats(self) -> Dict[str, Dict[str, dict]]:
        return {
            name: server.transport_stats()
            for name, server in sorted(self.servers.items())
        }

    def close(self) -> None:
        for server in self.servers.values():
            server.close()

    def __enter__(self) -> "FleetListeners":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
