"""Fleet supervisor: N concurrent diagnosis pipelines, one service plane.

:class:`FleetSupervisor` runs one :class:`~repro.service.DiagnosisService`
per :class:`PipelineSpec` (one per NF chain / site / tenant), each in its
own thread, all sharing

* one persistent :class:`~repro.fleet.pool.WorkerPool` — chunk diagnosis
  dispatches to warm worker processes, so pipelines genuinely overlap:
  while pipeline A's chunk computes in a pool process, pipeline B's
  thread journals/fsyncs its previous chunk and seals ingest for the
  next one.  Trace segments are registered with the pool once and reused
  across chunks (mutation-keyed), not re-shared per call;
* one :class:`FairScheduler` — bounds per-pipeline inflight chunks and
  admits waiting pipelines in FIFO-fair order, so a heavy pipeline
  cannot starve the rest while the pool is saturated.  Under
  *oversubscription* (more pipelines than pool workers) an optional
  fleet-wide victim budget caps each chunk through the service's
  existing deterministic shed path — load shedding stays journalled and
  replayable, never timing-dependent.

Crash-only, one level up: each pipeline keeps its own journal +
checkpoint directory and its own kill-point injector; the supervisor
adds :data:`~repro.service.crashsim.FLEET_KILL_POINTS` around launch,
drain and rollup.  When any pipeline crashes (or a fleet kill-point
fires), the supervisor sets the shared stop event — sibling pipelines
raise :class:`~repro.errors.ServiceStopped` at their *next chunk
boundary*, i.e. between commits — joins everything, and re-raises the
original crash.  A restarted fleet resumes every pipeline from its
checkpoints, so per-pipeline journals converge to the same bytes as a
never-crashed run (pinned by ``benchmarks/test_fleet_soak.py``).

The final :class:`FleetReport` carries per-pipeline reports plus the
cross-pipeline :class:`~repro.fleet.rollup.FleetRollup` ("NAT slow path,
14 sites") merged deterministically in sorted pipeline order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.records import DiagTrace
from repro.errors import FleetError, ServiceStopped
from repro.fleet.pool import WorkerPool
from repro.fleet.rollup import FleetRollup
from repro.service.runner import DiagnosisService, ServiceConfig, ServiceReport


@dataclass
class PipelineSpec:
    """One pipeline: a name, a telemetry source, optional overrides.

    ``source`` is a :class:`DiagTrace`, a TelemetrySource, or a zero-arg
    factory returning either — a factory is called once per supervisor
    run, which is what live sources need across crash-restarts (each run
    re-ingests its transport from the beginning).  ``config`` overrides
    the fleet-derived :class:`ServiceConfig`; ``faults``/``flaky`` are
    this pipeline's own injectors (crash harness / transient failures).
    """

    name: str
    source: object
    config: Optional[ServiceConfig] = None
    faults: object = None
    flaky: object = None


@dataclass
class FleetConfig:
    """Fleet-wide operating parameters.

    Per-pipeline :class:`ServiceConfig` values not overridden by a spec
    are derived from here, with ``state_dir`` fixed to
    ``<state_dir>/pipelines/<name>`` so every pipeline journals and
    checkpoints in its own directory under one fleet root.
    """

    state_dir: Union[str, Path]
    #: Warm worker processes shared by every pipeline (0 = no pool:
    #: pipelines diagnose inline in their threads, still concurrent for
    #: the journal/fsync and ingest portions).
    pool_workers: int = 2
    #: Per-pipeline ``diagnose_all`` parallelism (shards per chunk).
    workers: Union[int, str, None] = 1
    task_timeout_s: Optional[float] = None
    #: Max chunks one pipeline may have inflight at once (scheduler).
    max_inflight_chunks: int = 1
    #: Optional fleet-wide cap on concurrently-inflight chunks across all
    #: pipelines (None = bounded only by pipeline count).
    max_concurrent_chunks: Optional[int] = None
    #: Victim budget per chunk applied to every pipeline when the fleet
    #: is *oversubscribed* (more pipelines than pool workers).  A pure
    #: function of this config — never of runtime timing — so the shed
    #: decisions it causes are deterministic and replay identically
    #: after a crash.
    overload_victim_budget: Optional[int] = None
    #: ServiceConfig passthroughs.
    chunk_ns: int = 50_000_000
    margin_ns: int = 100_000_000
    victim_pct: float = 99.0
    victim_threshold_ns: Optional[int] = None
    max_victims_per_chunk: Optional[int] = None
    tally_compact_every: int = 8
    durable: bool = True
    #: Endurance passthroughs (see :class:`ServiceConfig`): bounded-memory
    #: tally budget, journal rotation/compaction thresholds, ingest
    #: snapshot cadence and retention, poison-chunk dead-lettering.
    tally_budget: Optional[int] = None
    journal_rotate_bytes: int = 0
    journal_compact_bytes: int = 0
    ingest_checkpoint_every: int = 0
    replay_retain_chunks: Optional[int] = None
    dead_letter_chunks: bool = False

    def __post_init__(self) -> None:
        if self.pool_workers < 0:
            raise FleetError(f"pool_workers must be >= 0: {self.pool_workers}")
        if self.max_inflight_chunks < 1:
            raise FleetError(
                f"max_inflight_chunks must be >= 1: {self.max_inflight_chunks}"
            )


class FairScheduler:
    """FIFO-fair chunk admission with per-pipeline inflight bounds.

    ``acquire`` blocks until this pipeline holds fewer than
    ``per_pipeline`` slots and (optionally) fewer than ``max_concurrent``
    slots are held fleet-wide; among eligible waiters, arrival order
    wins, so a pipeline that keeps finishing chunks cannot indefinitely
    overtake one that has been waiting.  Slots gate pacing only — they
    are released in ``finally`` even when a chunk unwinds with a
    simulated crash, so no waiter is ever stranded.
    """

    def __init__(
        self,
        per_pipeline: int = 1,
        max_concurrent: Optional[int] = None,
    ) -> None:
        self.per_pipeline = per_pipeline
        self.max_concurrent = max_concurrent
        self._cond = threading.Condition()
        self._inflight: Dict[str, int] = {}
        self._waiters: List[Tuple[object, str]] = []
        #: Telemetry: admissions, admissions that had to wait, peak
        #: concurrently-inflight chunks.
        self.admitted = 0
        self.waited = 0
        self.peak_inflight = 0

    def _next_eligible(self) -> Optional[object]:
        total = sum(self._inflight.values())
        if self.max_concurrent is not None and total >= self.max_concurrent:
            return None
        for ticket, pipeline in self._waiters:
            if self._inflight.get(pipeline, 0) < self.per_pipeline:
                return ticket
        return None

    def acquire(self, pipeline: str) -> None:
        ticket = object()
        with self._cond:
            self._waiters.append((ticket, pipeline))
            waited = False
            while self._next_eligible() is not ticket:
                waited = True
                self._cond.wait()
            self._waiters = [w for w in self._waiters if w[0] is not ticket]
            self._inflight[pipeline] = self._inflight.get(pipeline, 0) + 1
            self.admitted += 1
            if waited:
                self.waited += 1
            total = sum(self._inflight.values())
            if total > self.peak_inflight:
                self.peak_inflight = total

    def release(self, pipeline: str) -> None:
        with self._cond:
            held = self._inflight.get(pipeline, 0)
            if held <= 0:
                raise FleetError(f"release without acquire for {pipeline!r}")
            if held == 1:
                del self._inflight[pipeline]
            else:
                self._inflight[pipeline] = held - 1
            self._cond.notify_all()

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "waited": self.waited,
            "peak_inflight": self.peak_inflight,
        }


@dataclass
class FleetReport:
    """Final output of :meth:`FleetSupervisor.run`."""

    #: Per-pipeline service reports, keyed by pipeline name.
    pipelines: Dict[str, ServiceReport]
    #: Cross-pipeline causal-pattern rollup (sorted-name merge order).
    rollup: FleetRollup
    pool_stats: dict
    scheduler_stats: dict


class FleetSupervisor:
    """Run every pipeline to completion over one shared execution plane."""

    def __init__(
        self,
        pipelines: Sequence[PipelineSpec],
        config: FleetConfig,
        faults=None,
        executor: Optional[WorkerPool] = None,
    ) -> None:
        if not pipelines:
            raise FleetError("a fleet needs at least one pipeline")
        names = [spec.name for spec in pipelines]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate pipeline names: {names}")
        self.pipelines = list(pipelines)
        self.config = config
        #: Fleet-level crash injector (FLEET_KILL_POINTS).
        self.faults = faults
        #: Injected shared pool (kept warm across supervisor runs, e.g.
        #: by the benchmarks); when None the supervisor owns one per run.
        self._executor = executor
        state_dirs = [str(self._pipeline_config(s).state_dir) for s in pipelines]
        if len(set(state_dirs)) != len(state_dirs):
            raise FleetError(f"pipelines share a state_dir: {state_dirs}")

    # -- per-pipeline wiring ----------------------------------------------------

    def _pipeline_config(self, spec: PipelineSpec) -> ServiceConfig:
        """The spec's config, or one derived from the fleet defaults —
        either way with the fleet fan-out and overload budget applied."""
        cfg = self.config
        if spec.config is not None:
            service_cfg = spec.config
        else:
            service_cfg = ServiceConfig(
                state_dir=Path(cfg.state_dir) / "pipelines" / spec.name,
                chunk_ns=cfg.chunk_ns,
                margin_ns=cfg.margin_ns,
                victim_pct=cfg.victim_pct,
                victim_threshold_ns=cfg.victim_threshold_ns,
                tally_compact_every=cfg.tally_compact_every,
                workers=cfg.workers,
                task_timeout_s=cfg.task_timeout_s,
                max_victims_per_chunk=cfg.max_victims_per_chunk,
                durable=cfg.durable,
                tally_budget=cfg.tally_budget,
                journal_rotate_bytes=cfg.journal_rotate_bytes,
                journal_compact_bytes=cfg.journal_compact_bytes,
                ingest_checkpoint_every=cfg.ingest_checkpoint_every,
                replay_retain_chunks=cfg.replay_retain_chunks,
                dead_letter_chunks=cfg.dead_letter_chunks,
            )
        overrides: dict = {}
        if service_cfg.concurrent_pipelines == 1 and len(self.pipelines) > 1:
            overrides["concurrent_pipelines"] = len(self.pipelines)
        budget = self._overload_budget()
        if budget is not None and (
            service_cfg.max_victims_per_chunk is None
            or service_cfg.max_victims_per_chunk > budget
        ):
            overrides["max_victims_per_chunk"] = budget
        return replace(service_cfg, **overrides) if overrides else service_cfg

    def _overload_budget(self) -> Optional[int]:
        """Victim budget under oversubscription — config-derived only, so
        the resulting sheds are deterministic and crash-replayable."""
        cfg = self.config
        if cfg.overload_victim_budget is None:
            return None
        if cfg.pool_workers and len(self.pipelines) <= cfg.pool_workers:
            return None
        return cfg.overload_victim_budget

    @staticmethod
    def _resolve_source(spec: PipelineSpec):
        source = spec.source
        if callable(source) and not isinstance(source, DiagTrace):
            return source()
        return source

    # -- run --------------------------------------------------------------------

    def _run_pipeline(
        self,
        index: int,
        service: DiagnosisService,
        outcomes: Dict[str, ServiceReport],
        stopped: Dict[str, ServiceStopped],
        errors: List[Tuple[int, str, BaseException]],
        stop: threading.Event,
        lock: threading.Lock,
    ) -> None:
        name = service.pipeline
        try:
            report = service.run()
        except ServiceStopped as exc:
            # Cooperative wind-down after a sibling's crash: not a failure
            # of *this* pipeline — its journal ends at a clean boundary.
            with lock:
                stopped[name] = exc
        except BaseException as exc:
            with lock:
                errors.append((index, name, exc))
            stop.set()
        else:
            with lock:
                outcomes[name] = report

    def run(self) -> FleetReport:
        """Run every pipeline; resume each from its checkpoints first.

        Raises the first (by launch order) pipeline crash after winding
        the rest down at their chunk boundaries; fleet kill-points can
        additionally crash the supervisor itself around launch, drain and
        rollup.  Whatever unwinds, the owned pool is closed — no worker
        process or ``/dev/shm`` segment outlives this call.
        """
        faults = self.faults
        cfg = self.config
        if faults is not None:
            faults.kill("fleet-start", 0)
        pool = self._executor
        owns_pool = False
        if pool is None and cfg.pool_workers > 0:
            pool = WorkerPool(cfg.pool_workers)
            owns_pool = True
        scheduler = FairScheduler(
            per_pipeline=cfg.max_inflight_chunks,
            max_concurrent=cfg.max_concurrent_chunks,
        )
        stop = threading.Event()
        lock = threading.Lock()
        outcomes: Dict[str, ServiceReport] = {}
        stopped: Dict[str, ServiceStopped] = {}
        errors: List[Tuple[int, str, BaseException]] = []
        threads: List[threading.Thread] = []
        try:
            for index, spec in enumerate(self.pipelines):
                if faults is not None:
                    faults.kill("pipeline-launch", index)
                service = DiagnosisService(
                    self._resolve_source(spec),
                    self._pipeline_config(spec),
                    faults=spec.faults,
                    flaky=spec.flaky,
                    executor=pool,
                    stop_check=stop.is_set,
                    pipeline=spec.name,
                    scheduler=scheduler,
                )
                thread = threading.Thread(
                    target=self._run_pipeline,
                    args=(index, service, outcomes, stopped, errors, stop, lock),
                    name=f"pipeline-{spec.name}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
            if faults is not None:
                faults.kill("fleet-drain", 0)
            if errors:
                errors.sort(key=lambda item: item[0])
                raise errors[0][2]
            if stopped:  # pragma: no cover - stop without a recorded error
                raise FleetError(
                    f"pipelines stopped without a crash: {sorted(stopped)}"
                )
            rollup = FleetRollup.from_tallies(
                {name: report.tally for name, report in outcomes.items()}
            )
            report = FleetReport(
                pipelines=outcomes,
                rollup=rollup,
                pool_stats=(
                    pool.stats.to_payload() if pool is not None else {}
                ),
                scheduler_stats=scheduler.stats(),
            )
            if faults is not None:
                faults.kill("fleet-rollup", 0)
            return report
        finally:
            # A supervisor crash (fleet kill-point) lands here with
            # pipelines still running: order them stopped, wait for their
            # chunk boundaries, then tear down the pool.  BaseException-
            # safe: this is the path that keeps /dev/shm clean and worker
            # processes reaped no matter where the unwind started.
            stop.set()
            for thread in threads:
                thread.join()
            if owns_pool and pool is not None:
                pool.close()
