"""Fleet-scale execution plane: shared warm worker pool, fair chunk
scheduling, multi-pipeline supervision, cross-pipeline rollups."""

from repro.fleet.listeners import FleetListeners
from repro.fleet.pool import PendingTask, PoolStats, WorkerPool
from repro.fleet.rollup import (
    FleetRollup,
    RollupEntry,
    rollup_from_state_dirs,
    tally_from_journal,
)
from repro.fleet.supervisor import (
    FairScheduler,
    FleetConfig,
    FleetReport,
    FleetSupervisor,
    PipelineSpec,
)

__all__ = [
    "FairScheduler",
    "FleetConfig",
    "FleetListeners",
    "FleetReport",
    "FleetRollup",
    "FleetSupervisor",
    "PendingTask",
    "PipelineSpec",
    "PoolStats",
    "RollupEntry",
    "WorkerPool",
    "rollup_from_state_dirs",
    "tally_from_journal",
]
