"""Persistent shared worker pool: warm processes, registered traces.

The per-call parallel path in :mod:`repro.core.diagnosis` spawns one
process per shard and shares/unlinks the trace's shared-memory segment on
every ``diagnose_all`` — correct, but the spawn + share cost is paid per
chunk, and a fleet of N pipelines would each pay it independently.
:class:`WorkerPool` amortizes both:

* **warm workers** — processes are forked once at pool construction and
  serve tasks over duplex pipes until :meth:`close`.  A worker keeps a
  small cache of ``(trace segment, engine)`` pairs keyed by segment name,
  so successive chunks of the same pipeline reuse an already-attached
  trace *and* an already-warmed engine (memo layers carried across
  chunks of one call never change results — memoization is
  result-invariant);
* **registered traces** — :meth:`register_trace` shares a trace's columns
  into ``/dev/shm`` once and reuses the segment across calls, keyed on
  the trace's mutation counter (:class:`~repro.core.columnar.SharedTraceCache`).
  A mutated trace (live ingest grew it) retires the old segment and
  registers a fresh generation; workers notice the new name and attach
  fresh.  Every live segment is unlinked by :meth:`close`, which owners
  run in ``try/finally`` so the no-``/dev/shm``-leak guarantee survives
  :class:`BaseException` unwinds (``SimulatedCrash`` included);
* **checkout fairness** — free workers live in a FIFO queue; concurrent
  pipeline threads block on checkout and are served in arrival order, so
  no pipeline can starve another while the pool is saturated.

Failure semantics match the per-call path: a worker that dies or misses
its deadline is killed and a replacement forked (``respawns`` in
:class:`PoolStats`); the submitting engine retries the shard serially.
Workers resolve ``_parallel_worker_init``/``_parallel_worker_diagnose``
through :mod:`repro.core.diagnosis` module globals at call time, so a
fork-inherited monkeypatch of either (how the watchdog tests wedge a
worker) behaves exactly as it does under the per-call path.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.errors import FleetError

#: Trace registrations the pool retains (LRU); each holds one /dev/shm
#: segment plus a strong reference to its trace.
DEFAULT_MAX_TRACES = 16

#: Attached (segment, engine) pairs one worker caches before evicting the
#: least recently used — bounds worker-side memory across many pipelines.
WORKER_CACHE_SLOTS = 4


@dataclass
class PoolStats:
    """Dispatch telemetry for one pool lifetime (pure ints)."""

    workers: int = 0
    tasks: int = 0
    failures: int = 0
    timeouts: int = 0
    respawns: int = 0
    #: Trace registry: segments built vs. calls served by a live segment.
    trace_shares: int = 0
    trace_reuses: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _Worker:
    """One warm worker process and the parent end of its pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn


class PendingTask:
    """Handle for one submitted shard; :meth:`result` returns the worker."""

    def __init__(self, pool: "WorkerPool", worker: _Worker) -> None:
        self._pool = pool
        self._worker = worker
        self._done = False

    def result(self, deadline: Optional[float] = None):
        """``(status, payload)``: ``("ok", wires)``, ``("error", msg)`` or
        ``("timeout", None)``.

        ``deadline`` is an absolute ``time.monotonic()`` instant shared by
        sibling shards.  A missed deadline kills this worker (a wedged
        process never honours a soft shutdown) and forks a replacement;
        only the expired shard is lost — siblings keep their workers.
        """
        if self._done:
            raise FleetError("pool task result consumed twice")
        self._done = True
        worker, pool = self._worker, self._pool
        try:
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
                if not worker.conn.poll(remaining):
                    pool._retire(worker)
                    pool.stats.timeouts += 1
                    pool.stats.failures += 1
                    return ("timeout", None)
            status, payload = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died before reporting (crash, os._exit, kill).
            pool._retire(worker)
            pool.stats.failures += 1
            return ("error", "worker died before reporting")
        pool._release(worker)
        if status != "ok":
            pool.stats.failures += 1
        return (status, payload)


class WorkerPool:
    """Fleet-wide persistent process pool (see module docstring)."""

    def __init__(
        self, workers: int = 2, max_traces: int = DEFAULT_MAX_TRACES
    ) -> None:
        if workers < 1:
            raise FleetError(f"pool needs at least one worker, got {workers}")
        self.size = workers
        self.max_traces = max_traces
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self._lock = threading.Lock()
        self._free: "queue.Queue[_Worker]" = queue.Queue()
        self._workers: list = []
        #: id(trace) -> (trace, SharedTraceCache); the strong trace
        #: reference both keeps the cache's mutation key meaningful and
        #: prevents id() reuse from aliasing two traces.
        self._traces: "OrderedDict[int, tuple]" = OrderedDict()
        self.closed = False
        self.stats = PoolStats(workers=workers)
        # Start the multiprocessing resource tracker *before* forking
        # workers: shm attaches register with the tracker (gh-82300), and
        # only a child that inherited the parent's tracker fd collapses
        # its registrations into the parent's set — a child that lazily
        # starts its own tracker would warn about every segment the
        # parent later unlinks.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API unavailable
            pass
        try:
            for _ in range(workers):
                self._free.put(self._spawn())
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle -------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        proc = self._context.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        with self._lock:
            self._workers.append(worker)
        return worker

    def _release(self, worker: _Worker) -> None:
        if self.closed:
            return
        self._free.put(worker)

    def _retire(self, worker: _Worker) -> None:
        """Kill a dead/wedged worker and fork its replacement."""
        try:
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck terminate
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        if not self.closed:
            self.stats.respawns += 1
            self._free.put(self._spawn())

    # -- trace registry ---------------------------------------------------------

    def register_trace(self, trace) -> str:
        """Name of the live shared segment for ``trace``'s current contents.

        Shares once, then reuses until the trace mutates (the cache is
        keyed on ``trace._mutations``); the retired generation is unlinked
        immediately — attached workers keep their mapping alive until they
        drop it, which POSIX permits.  Registrations are LRU-capped at
        ``max_traces``.
        """
        from repro.core.columnar import SharedTraceCache

        if self.closed:
            raise FleetError("register_trace on a closed pool")
        with self._lock:
            entry = self._traces.get(id(trace))
            if entry is None or entry[0] is not trace:
                entry = (trace, SharedTraceCache(trace))
                self._traces[id(trace)] = entry
            self._traces.move_to_end(id(trace))
            while len(self._traces) > self.max_traces:
                _key, (_old_trace, old_cache) = self._traces.popitem(last=False)
                old_cache.close()
            cache = entry[1]
            name = cache.segment().name
            self.stats.trace_shares = sum(
                c.shares for _t, c in self._traces.values()
            )
            self.stats.trace_reuses = sum(
                c.reuses for _t, c in self._traces.values()
            )
            return name

    # -- dispatch ---------------------------------------------------------------

    def submit(self, task: tuple) -> PendingTask:
        """Check out a free worker (FIFO; blocks when saturated) and send.

        The task is a ``("shm", trace_name, victims_name, lo, hi, params)``
        or ``("pickle", init_args, victims)`` tuple — the same shapes the
        per-call shard workers consume.
        """
        if self.closed:
            raise FleetError("submit on a closed pool")
        worker = self._free.get()
        self.stats.tasks += 1
        try:
            worker.conn.send(task)
        except (OSError, ValueError):
            # Send failed (worker died between tasks): retire and retry
            # once on a fresh worker.
            self._retire(worker)
            worker = self._free.get()
            worker.conn.send(task)
        return PendingTask(self, worker)

    # -- shutdown ---------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink every registered segment.

        Idempotent and BaseException-safe: owners call it in ``finally``
        so no worker process or ``/dev/shm`` segment outlives the owning
        scope, however it unwound.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            self._workers.clear()
            traces = list(self._traces.values())
            self._traces.clear()
        for worker in workers:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for worker in workers:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck terminate
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        for _trace, cache in traces:
            cache.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


# -- worker side ---------------------------------------------------------------


def _pool_worker_main(conn) -> None:
    """Warm-worker loop: attach, diagnose, answer, repeat until shutdown.

    Engines are cached per ``(trace segment name, engine params)`` so a
    pipeline's successive chunks skip both the attach and the engine
    rebuild.  Diagnosis itself goes through the module-global
    ``_parallel_worker_init``/``_parallel_worker_diagnose`` entry points
    in :mod:`repro.core.diagnosis` — same code, same monkeypatchability
    as the per-call shard workers.
    """
    import repro.core.diagnosis as diagnosis_mod
    from repro.core import columnar

    engines: "OrderedDict[tuple, object]" = OrderedDict()
    segments: Dict[tuple, object] = {}

    def _drop_engine(key: tuple) -> None:
        engines.pop(key, None)
        shm = segments.pop(key, None)
        if shm is not None:
            try:
                shm.close()
            except Exception:  # pragma: no cover - views still alive
                pass

    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            try:
                if task[0] == "shm":
                    _kind, trace_name, victims_name, lo, hi, params = task
                    key = (trace_name, params)
                    engine = engines.get(key)
                    if engine is None:
                        trace, shm = columnar.attach_trace(trace_name)
                        segments[key] = shm
                        diagnosis_mod._parallel_worker_init(trace, *params)
                        engine = diagnosis_mod._WORKER_ENGINE
                        engines[key] = engine
                        while len(engines) > WORKER_CACHE_SLOTS:
                            _drop_engine(next(iter(engines)))
                    else:
                        diagnosis_mod._WORKER_ENGINE = engine
                    engines.move_to_end(key)
                    victims = columnar.attach_victims(
                        victims_name,
                        engine.trace.columns().nf_names,
                        lo,
                        hi,
                    )
                    conn.send(("ok", diagnosis_mod._parallel_worker_diagnose(victims)))
                elif task[0] == "pickle":
                    _kind, init_args, victims = task
                    diagnosis_mod._parallel_worker_init(*init_args)
                    conn.send(("ok", diagnosis_mod._parallel_worker_diagnose(victims)))
                else:
                    conn.send(("error", f"unknown task kind {task[0]!r}"))
            except BaseException as exc:
                try:
                    conn.send(("error", repr(exc)))
                except Exception:  # pragma: no cover - parent gone
                    pass
    finally:
        diagnosis_mod._WORKER_ENGINE = None
        engines.clear()
        for shm in segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - views still alive
                pass
        try:
            conn.close()
        except Exception:
            pass
