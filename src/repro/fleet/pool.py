"""Persistent shared worker pool: warm processes, registered traces.

The per-call parallel path in :mod:`repro.core.diagnosis` spawns one
process per shard and shares/unlinks the trace's shared-memory segment on
every ``diagnose_all`` — correct, but the spawn + share cost is paid per
chunk, and a fleet of N pipelines would each pay it independently.
:class:`WorkerPool` amortizes both:

* **warm workers** — processes are forked once at pool construction and
  serve tasks over duplex pipes until :meth:`close`.  A worker keeps a
  small cache of ``(trace segment, engine)`` pairs keyed by segment name,
  so successive chunks of the same pipeline reuse an already-attached
  trace *and* an already-warmed engine (memo layers carried across
  chunks of one call never change results — memoization is
  result-invariant);
* **registered traces** — :meth:`register_trace` shares a trace's columns
  into ``/dev/shm`` once and reuses the segment across calls, keyed on
  the trace's mutation counter (:class:`~repro.core.columnar.SharedTraceCache`).
  A mutated trace (live ingest grew it) retires the old segment and
  registers a fresh generation; workers notice the new name and attach
  fresh.  Every live segment is unlinked by :meth:`close`, which owners
  run in ``try/finally`` so the no-``/dev/shm``-leak guarantee survives
  :class:`BaseException` unwinds (``SimulatedCrash`` included);
* **checkout fairness** — free workers live in a FIFO queue; concurrent
  pipeline threads block on checkout and are served in arrival order, so
  no pipeline can starve another while the pool is saturated.

Deadlock discipline: :meth:`submit` takes an optional ``timeout`` and
returns ``None`` when no worker frees up in time.  Callers follow one
rule — *never block on checkout while holding checked-out workers*.  The
engine's pooled path blocks only for its first shard (holding nothing)
and uses timed submits afterwards, falling back to inline diagnosis when
the pool stays contended, so N pipelines sharing a small pool cannot
hold-and-wait each other into a standstill.

Failure semantics match the per-call path: a worker that dies or misses
its deadline is killed and a replacement spawned (``respawns`` in
:class:`PoolStats`); the submitting engine retries the shard serially.
Replacements use the ``spawn`` start method: a mid-run respawn happens
from an already-multithreaded parent (pipeline threads, possibly holding
locks), where ``fork`` could deadlock the child — only the initial
workers, forked before any pipeline thread exists, inherit the parent's
state.
Workers resolve ``_parallel_worker_init``/``_parallel_worker_diagnose``
through :mod:`repro.core.diagnosis` module globals at call time, so a
fork-inherited monkeypatch of either (how the watchdog tests wedge a
worker) behaves exactly as it does under the per-call path.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.errors import FleetError

#: Trace registrations the pool retains (LRU); each holds one /dev/shm
#: segment plus a strong reference to its trace.
DEFAULT_MAX_TRACES = 16

#: Attached (segment, engine) pairs one worker caches before evicting the
#: least recently used — bounds worker-side memory across many pipelines.
WORKER_CACHE_SLOTS = 4


@dataclass
class PoolStats:
    """Dispatch telemetry for one pool lifetime (pure ints)."""

    workers: int = 0
    tasks: int = 0
    failures: int = 0
    timeouts: int = 0
    respawns: int = 0
    #: Trace registry: segments built vs. calls served by a live segment.
    trace_shares: int = 0
    trace_reuses: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _Worker:
    """One warm worker process and the parent end of its pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn


class PendingTask:
    """Handle for one submitted shard; :meth:`result` returns the worker."""

    def __init__(
        self,
        pool: "WorkerPool",
        worker: _Worker,
        segment: Optional[str] = None,
    ) -> None:
        self._pool = pool
        self._worker = worker
        self._segment = segment
        self._done = False

    def result(self, deadline: Optional[float] = None):
        """``(status, payload)``: ``("ok", wires)``, ``("error", msg)`` or
        ``("timeout", None)``.

        ``deadline`` is an absolute ``time.monotonic()`` instant shared by
        sibling shards.  A missed deadline kills this worker (a wedged
        process never honours a soft shutdown) and spawns a replacement;
        only the expired shard is lost — siblings keep their workers.
        """
        if self._done:
            raise FleetError("pool task result consumed twice")
        self._done = True
        worker, pool = self._worker, self._pool
        try:
            try:
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                    if not worker.conn.poll(remaining):
                        pool._retire(worker)
                        pool._bump(timeouts=1, failures=1)
                        return ("timeout", None)
                status, payload = worker.conn.recv()
            except (EOFError, OSError):
                # The worker died before reporting (crash, os._exit, kill).
                pool._retire(worker)
                pool._bump(failures=1)
                return ("error", "worker died before reporting")
            pool._release(worker)
            if status != "ok":
                pool._bump(failures=1)
            return (status, payload)
        finally:
            # This shard no longer references its trace segment — an
            # evicted generation waiting on it may now be unlinked.
            pool._decref_segment(self._segment)


class WorkerPool:
    """Fleet-wide persistent process pool (see module docstring)."""

    def __init__(
        self, workers: int = 2, max_traces: int = DEFAULT_MAX_TRACES
    ) -> None:
        if workers < 1:
            raise FleetError(f"pool needs at least one worker, got {workers}")
        self.size = workers
        self.max_traces = max_traces
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        # Mid-run respawns happen from a multithreaded parent (pipeline
        # threads may hold the pool lock or be mid-import), where fork is
        # unsafe — the forked child can deadlock on an inherited lock.
        # Initial workers are still forked: __init__ runs before any
        # pipeline thread exists, and fork inheritance is what lets the
        # watchdog tests wedge a worker via monkeypatch.
        self._respawn_context = (
            multiprocessing.get_context("spawn")
            if "spawn" in methods
            else self._context
        )
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._free: "queue.Queue[_Worker]" = queue.Queue()
        self._workers: list = []
        #: id(trace) -> (trace, SharedTraceCache); the strong trace
        #: reference both keeps the cache's mutation key meaningful and
        #: prevents id() reuse from aliasing two traces.
        self._traces: "OrderedDict[int, tuple]" = OrderedDict()
        #: segment name -> in-flight shm tasks referencing it.  A segment
        #: evicted (or generation-retired) while referenced is parked in
        #: ``_retired_caches`` and unlinked on the last decref, never out
        #: from under a worker that will attach it by name.
        self._seg_refs: Dict[str, int] = {}
        self._retired_caches: Dict[str, object] = {}
        #: shares/reuses of caches dropped from the registry, folded into
        #: ``trace_shares``/``trace_reuses`` so eviction never rolls the
        #: telemetry backwards.
        self._evicted_shares = 0
        self._evicted_reuses = 0
        self.closed = False
        self.stats = PoolStats(workers=workers)
        # Start the multiprocessing resource tracker *before* forking
        # workers: shm attaches register with the tracker (gh-82300), and
        # only a child that inherited the parent's tracker fd collapses
        # its registrations into the parent's set — a child that lazily
        # starts its own tracker would warn about every segment the
        # parent later unlinks.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API unavailable
            pass
        try:
            for _ in range(workers):
                self._free.put(self._spawn())
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle -------------------------------------------------------

    def _spawn(self, context=None) -> _Worker:
        context = context if context is not None else self._context
        parent_conn, child_conn = context.Pipe(duplex=True)
        proc = context.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        with self._lock:
            self._workers.append(worker)
        return worker

    def _bump(self, **deltas: int) -> None:
        """Increment stats counters atomically (pipeline threads race)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    def _release(self, worker: _Worker) -> None:
        if self.closed:
            return
        self._free.put(worker)

    def _retire(self, worker: _Worker) -> None:
        """Kill a dead/wedged worker and start its replacement.

        The replacement comes from the ``spawn`` context — by the time a
        worker dies mid-run the parent has pipeline threads, and forking
        a multithreaded process can deadlock the child on an inherited
        lock (Python 3.12+ warns outright).
        """
        try:
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck terminate
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        if not self.closed:
            self._bump(respawns=1)
            self._free.put(self._spawn(self._respawn_context))

    # -- trace registry ---------------------------------------------------------

    def register_trace(self, trace) -> str:
        """Name of the live shared segment for ``trace``'s current contents.

        Shares once, then reuses until the trace mutates (the cache is
        keyed on ``trace._mutations``); retired generations and LRU
        evictions (``max_traces``) are unlinked immediately *unless* an
        in-flight task still references the segment by name — a segment a
        worker has yet to attach is parked and unlinked on the last
        :meth:`PendingTask.result`, so eviction under a deep registry
        never yanks a sibling pipeline's dispatch out from under it.
        Already-attached workers keep their mapping alive across an
        unlink regardless, which POSIX permits.
        """
        from repro.core.columnar import SharedTraceCache

        if self.closed:
            raise FleetError("register_trace on a closed pool")
        to_close = []
        try:
            with self._lock:
                entry = self._traces.get(id(trace))
                if entry is None or entry[0] is not trace:
                    entry = (trace, SharedTraceCache(trace))
                    self._traces[id(trace)] = entry
                else:
                    # The cache would retire its generation inside
                    # segment() below; if in-flight tasks still name the
                    # old segment, park the whole cache and start fresh.
                    cache = entry[1]
                    old_name = cache.name
                    if (
                        old_name is not None
                        and cache._mutations != trace._mutations
                        and self._seg_refs.get(old_name, 0) > 0
                    ):
                        self._park_cache(old_name, cache)
                        entry = (trace, SharedTraceCache(trace))
                        self._traces[id(trace)] = entry
                self._traces.move_to_end(id(trace))
                while len(self._traces) > self.max_traces:
                    _key, (_t, old_cache) = self._traces.popitem(last=False)
                    old_name = old_cache.name
                    if (
                        old_name is not None
                        and self._seg_refs.get(old_name, 0) > 0
                    ):
                        self._park_cache(old_name, old_cache)
                    else:
                        self._evicted_shares += old_cache.shares
                        self._evicted_reuses += old_cache.reuses
                        to_close.append(old_cache)
                cache = entry[1]
                name = cache.segment().name
                with self._stats_lock:
                    self.stats.trace_shares = self._evicted_shares + sum(
                        c.shares for _t, c in self._traces.values()
                    )
                    self.stats.trace_reuses = self._evicted_reuses + sum(
                        c.reuses for _t, c in self._traces.values()
                    )
                return name
        finally:
            # Unlinks are syscalls — do them outside the pool lock.
            for old_cache in to_close:
                old_cache.close()

    def _park_cache(self, name: str, cache) -> None:
        """Defer a still-referenced cache's unlink to the last decref.

        Caller holds ``self._lock``.  The cache's telemetry is folded
        into the evicted accumulators here, so parking is invisible in
        ``trace_shares``/``trace_reuses``.
        """
        self._evicted_shares += cache.shares
        self._evicted_reuses += cache.reuses
        self._retired_caches[name] = cache

    def _incref_segment(self, name: Optional[str]) -> None:
        if name is None:
            return
        with self._lock:
            self._seg_refs[name] = self._seg_refs.get(name, 0) + 1

    def _decref_segment(self, name: Optional[str]) -> None:
        if name is None:
            return
        to_close = None
        with self._lock:
            held = self._seg_refs.get(name, 0)
            if held <= 1:
                self._seg_refs.pop(name, None)
                to_close = self._retired_caches.pop(name, None)
            else:
                self._seg_refs[name] = held - 1
        if to_close is not None:
            to_close.close()

    # -- dispatch ---------------------------------------------------------------

    def submit(
        self, task: tuple, timeout: Optional[float] = None
    ) -> Optional[PendingTask]:
        """Check out a free worker (FIFO) and send; ``None`` on timeout.

        ``timeout=None`` blocks until a worker frees up — only safe for a
        caller holding no checked-out workers (see module docstring);
        ``timeout=0`` polls.  The task is a ``("shm", trace_name,
        victims_name, lo, hi, params)`` or ``("pickle", init_args,
        victims)`` tuple — the same shapes the per-call shard workers
        consume.
        """
        if self.closed:
            raise FleetError("submit on a closed pool")
        worker = self._checkout(timeout)
        if worker is None:
            return None
        self._bump(tasks=1)
        try:
            worker.conn.send(task)
        except (OSError, ValueError):
            # Send failed (worker died between tasks): retire and retry
            # once on a fresh worker.  _retire put a replacement in the
            # queue, so this checkout returns promptly; a short deadline
            # guards the race where another thread grabs it first.
            self._retire(worker)
            worker = self._checkout(timeout=30.0)
            if worker is None:  # pragma: no cover - replacement raced away
                raise FleetError("no worker available to retry failed send")
            try:
                worker.conn.send(task)
            except (OSError, ValueError):
                # Second worker also dead: retire it too (never leak a
                # checked-out worker — the pool must not shrink) and give
                # up; the caller's serial fallback covers the shard.
                self._retire(worker)
                raise
        segment = task[1] if task and task[0] == "shm" else None
        self._incref_segment(segment)
        return PendingTask(self, worker, segment)

    def _checkout(self, timeout: Optional[float] = None) -> Optional[_Worker]:
        try:
            if timeout is None:
                return self._free.get()
            if timeout <= 0:
                return self._free.get_nowait()
            return self._free.get(timeout=timeout)
        except queue.Empty:
            return None

    # -- shutdown ---------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink every registered segment.

        Idempotent and BaseException-safe: owners call it in ``finally``
        so no worker process or ``/dev/shm`` segment outlives the owning
        scope, however it unwound.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            self._workers.clear()
            traces = list(self._traces.values())
            self._traces.clear()
            retired = list(self._retired_caches.values())
            self._retired_caches.clear()
            self._seg_refs.clear()
        for worker in workers:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for worker in workers:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck terminate
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        for _trace, cache in traces:
            cache.close()
        for cache in retired:
            cache.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


# -- worker side ---------------------------------------------------------------


def _pool_worker_main(conn) -> None:
    """Warm-worker loop: attach, diagnose, answer, repeat until shutdown.

    Engines are cached per ``(trace segment name, engine params)`` so a
    pipeline's successive chunks skip both the attach and the engine
    rebuild.  Diagnosis itself goes through the module-global
    ``_parallel_worker_init``/``_parallel_worker_diagnose`` entry points
    in :mod:`repro.core.diagnosis` — same code, same monkeypatchability
    as the per-call shard workers.
    """
    import repro.core.diagnosis as diagnosis_mod
    from repro.core import columnar

    engines: "OrderedDict[tuple, object]" = OrderedDict()
    segments: Dict[tuple, object] = {}

    def _drop_engine(key: tuple) -> None:
        engines.pop(key, None)
        shm = segments.pop(key, None)
        if shm is not None:
            try:
                shm.close()
            except Exception:  # pragma: no cover - views still alive
                pass

    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            try:
                if task[0] == "shm":
                    _kind, trace_name, victims_name, lo, hi, params = task
                    key = (trace_name, params)
                    engine = engines.get(key)
                    if engine is None:
                        trace, shm = columnar.attach_trace(trace_name)
                        segments[key] = shm
                        diagnosis_mod._parallel_worker_init(trace, *params)
                        engine = diagnosis_mod._WORKER_ENGINE
                        engines[key] = engine
                        while len(engines) > WORKER_CACHE_SLOTS:
                            _drop_engine(next(iter(engines)))
                    else:
                        diagnosis_mod._WORKER_ENGINE = engine
                    engines.move_to_end(key)
                    victims = columnar.attach_victims(
                        victims_name,
                        engine.trace.columns().nf_names,
                        lo,
                        hi,
                    )
                    conn.send(("ok", diagnosis_mod._parallel_worker_diagnose(victims)))
                elif task[0] == "pickle":
                    _kind, init_args, victims = task
                    diagnosis_mod._parallel_worker_init(*init_args)
                    conn.send(("ok", diagnosis_mod._parallel_worker_diagnose(victims)))
                else:
                    conn.send(("error", f"unknown task kind {task[0]!r}"))
            except BaseException as exc:
                try:
                    conn.send(("error", repr(exc)))
                except Exception:  # pragma: no cover - parent gone
                    pass
    finally:
        diagnosis_mod._WORKER_ENGINE = None
        engines.clear()
        for shm in segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - views still alive
                pass
        try:
            conn.close()
        except Exception:
            pass
