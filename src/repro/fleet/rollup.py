"""Cross-pipeline rollups: fleet-level causal-pattern reports.

A fleet of per-site pipelines produces one :class:`CulpritTally` each —
useful per site, but an operator running 14 sites wants "NAT slow path,
14 sites, 2.1M blame" once, not 14 times.  :class:`FleetRollup` merges
per-pipeline tallies by ``(kind, location)`` culprit identity and keeps
*provenance*: which pipelines saw each culprit, and how much blame each
contributed.

Determinism contract: the rollup is a pure fold over per-pipeline tallies
in sorted pipeline-name order, and every tally is itself reconstructible
from its pipeline's journal (:func:`tally_from_journal` replays the chunk
records exactly the way the service's checkpoint-restore path does).  So
``rollup(journals)`` is a deterministic function of the journal bytes —
and since the crash-only invariant makes those bytes restart-independent,
the fleet report is too: kill anything, restart, same rollup payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from repro.aggregation.tallies import CulpritTally
from repro.errors import FleetError

_ROLLUP_VERSION = 1


@dataclass
class RollupEntry:
    """Fleet-wide accumulated blame for one (kind, location) culprit."""

    score: float = 0.0
    count: int = 0
    confidence_mass: float = 0.0
    #: Accumulated sketch error bound (zero when every contributing
    #: pipeline tallied this culprit exactly; see
    #: :class:`~repro.aggregation.sketches.BoundedCulpritTally`).  The
    #: true fleet-wide blame lies in ``[score - score_error, score]``.
    score_error: float = 0.0
    #: pipeline name -> blame contributed by that pipeline.
    per_pipeline: Dict[str, float] = field(default_factory=dict)

    @property
    def sites(self) -> int:
        """How many pipelines saw this culprit at all."""
        return len(self.per_pipeline)

    @property
    def exact(self) -> bool:
        return self.score_error == 0.0

    @property
    def mean_confidence(self) -> float:
        if self.score <= 0:
            return 1.0
        return self.confidence_mass / self.score


class FleetRollup:
    """Deterministic merge of per-pipeline culprit tallies."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], RollupEntry] = {}
        self._victims_per_pipeline: Dict[str, int] = {}
        self.pipelines: List[str] = []
        self.victims = 0
        self.culprits = 0
        self.total_score = 0.0

    def add(self, pipeline: str, tally: CulpritTally) -> None:
        """Fold one pipeline's tally in (call in sorted pipeline order)."""
        if pipeline in self._victims_per_pipeline:
            raise FleetError(f"pipeline {pipeline!r} already rolled up")
        self.pipelines.append(pipeline)
        self._victims_per_pipeline[pipeline] = tally.victims
        self.victims += tally.victims
        self.culprits += tally.culprits
        self.total_score += tally.total_score
        for key, entry in tally.entries():
            mine = self._entries.get(key)
            if mine is None:
                mine = self._entries[key] = RollupEntry()
            mine.score += entry.score
            mine.count += entry.count
            mine.confidence_mass += entry.confidence_mass
            mine.score_error += getattr(entry, "score_error", 0.0)
            mine.per_pipeline[pipeline] = entry.score

    @classmethod
    def from_tallies(
        cls, tallies: Mapping[str, CulpritTally]
    ) -> "FleetRollup":
        """Roll up ``{pipeline name: tally}`` in sorted-name order, so the
        float accumulation order — hence the payload — is independent of
        dict construction order and of which pipeline finished first."""
        rollup = cls()
        for name in sorted(tallies):
            rollup.add(name, tallies[name])
        return rollup

    # -- queries --------------------------------------------------------------

    def top(self, n: int = 10) -> List[Tuple[str, str, RollupEntry]]:
        """Heaviest fleet-wide offenders, ties broken lexically."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1].score, kv[0])
        )
        return [(kind, loc, entry) for (kind, loc), entry in ranked[:n]]

    def entry(self, kind: str, location: str) -> RollupEntry:
        return self._entries.get((kind, location), RollupEntry())

    def format(self, limit: int = 10) -> str:
        """Operator view: one line per culprit, with site provenance."""
        lines = [
            f"fleet: {len(self.pipelines)} pipelines, "
            f"{self.victims} victims, {self.total_score:.3f} total blame"
        ]
        lines.append(f"{'score':>12}  {'n':>6}  {'sites':>5}  {'conf':>5}  culprit")
        for kind, location, entry in self.top(limit):
            error = (
                "" if entry.exact else f" (±{entry.score_error:.3f} sketch)"
            )
            lines.append(
                f"{entry.score:12.3f}  {entry.count:6d}  {entry.sites:5d}  "
                f"{entry.mean_confidence:5.2f}  [{kind}] {location}, "
                f"{entry.sites}/{len(self.pipelines)} sites{error}"
            )
        return "\n".join(lines)

    # -- canonical payload -----------------------------------------------------

    def to_payload(self) -> dict:
        """Pure-JSON state, fully sorted: byte-canonical after dumps."""
        return {
            "version": _ROLLUP_VERSION,
            "pipelines": sorted(self.pipelines),
            "victims": self.victims,
            "culprits": self.culprits,
            "total_score": self.total_score,
            "victims_per_pipeline": dict(
                sorted(self._victims_per_pipeline.items())
            ),
            "entries": [
                {
                    "kind": kind,
                    "location": location,
                    "score": entry.score,
                    "count": entry.count,
                    "confidence_mass": entry.confidence_mass,
                    "score_error": entry.score_error,
                    "sites": entry.sites,
                    "per_pipeline": dict(sorted(entry.per_pipeline.items())),
                }
                for (kind, location), entry in sorted(self._entries.items())
            ],
        }


def tally_from_journal(journal_path: Union[str, Path]) -> CulpritTally:
    """Rebuild one pipeline's tally from its journal alone.

    Replays every chunk record's wire-decoded diagnoses in journal order —
    the same float-accumulation order the live service used — so the
    result equals the service's in-memory tally exactly.  A compacted
    journal seeds the replay from its ``COMPACT`` header, which holds the
    fold of every retired segment's chunk records — so the equality holds
    across rotation and compaction too.  This is what makes the fleet
    rollup recomputable offline from journals: no checkpoint, no live
    service, just the append-only record of results.
    """
    from repro.aggregation.sketches import tally_from_payload
    from repro.service.journal import ResultJournal, decode_diagnoses

    journal = ResultJournal(Path(journal_path), durable=False)
    compacted = journal.compacted_tally_payload()
    tally = (
        CulpritTally() if compacted is None else tally_from_payload(compacted)
    )
    for _chunk, body in journal.records():
        if "kind" in body:
            continue
        tally.update(decode_diagnoses(body))
    return tally


def rollup_from_state_dirs(
    pipeline_dirs: Mapping[str, Union[str, Path]]
) -> FleetRollup:
    """Roll up a fleet offline from per-pipeline service state directories."""
    return FleetRollup.from_tallies(
        {
            name: tally_from_journal(Path(directory) / "journal.jsonl")
            for name, directory in pipeline_dirs.items()
        }
    )
