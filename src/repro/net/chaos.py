"""A byte-level chaos proxy for the network ingestion plane.

:class:`ChaosProxy` sits between a :class:`~repro.net.sender.RecordSender`
and a :class:`~repro.net.server.SocketIngestServer` and injects seeded
faults into the client-to-server byte stream: abrupt connection resets,
torn (partial) frames, per-frame delay, duplicated frames, and reordered
frames.  It is the crashsim philosophy extended to the wire — every
fault is drawn from a :func:`~repro.util.rng.substream` keyed by the
connection index, so a soak run's entire fault schedule replays from one
seed.

The proxy parses frame *boundaries* only (:func:`~repro.net.frames.split_frames`)
— like a real middlebox it never validates CRCs or decodes payloads, so
whatever damage it inflicts is detected by the endpoints, which is the
property under test: no fault schedule may change the journal bytes the
service ultimately writes.

Exactly one ``rng.random()`` is drawn per forwarded frame to pick the
fault (plus one more for the fault's parameter where one is needed);
this draw discipline is load-bearing — it is what makes a fault schedule
a pure function of ``(seed, connection index, frame index)``.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
from dataclasses import dataclass, field, fields
from typing import List, Optional, Tuple, Union

from repro.errors import IngestError
from repro.net.frames import split_frames
from repro.util.rng import substream


@dataclass(frozen=True)
class ChaosConfig:
    """Per-frame fault probabilities (evaluated in this order, one draw:
    reset, partial-then-reset, duplicate, reorder, delay, else clean)."""

    reset_prob: float = 0.0
    partial_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    delay_prob: float = 0.0
    #: Upper bound of the uniform per-frame delay.
    max_delay_s: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        total = (
            self.reset_prob
            + self.partial_prob
            + self.dup_prob
            + self.reorder_prob
            + self.delay_prob
        )
        if not 0.0 <= total <= 1.0:
            raise IngestError(
                f"fault probabilities must sum into [0, 1]: {total}"
            )

    @classmethod
    def uniform(cls, fault_rate: float, seed: int = 0) -> "ChaosConfig":
        """Split an overall fault rate evenly across the five faults."""
        each = fault_rate / 5.0
        return cls(
            reset_prob=each,
            partial_prob=each,
            dup_prob=each,
            reorder_prob=each,
            delay_prob=each,
            seed=seed,
        )


@dataclass
class ChaosStats:
    """What the proxy did to the traffic."""

    connections: int = 0
    frames: int = 0
    resets: int = 0
    partials: int = 0
    dups: int = 0
    reorders: int = 0
    delays: int = 0
    bytes_upstream: int = 0
    bytes_downstream: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def faults(self) -> int:
        return self.resets + self.partials + self.dups + self.reorders


class _Pipe:
    """One proxied connection: the client socket and its upstream."""

    def __init__(self, client: socket.socket, upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self.lock = threading.Lock()
        self.alive = True

    def kill(self, abrupt: bool = True) -> None:
        with self.lock:
            if not self.alive:
                return
            self.alive = False
        if abrupt:
            # RST instead of FIN: the sender sees ECONNRESET, the
            # harsher of the two disconnect flavours.
            try:
                self.client.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A fault-injecting TCP proxy in front of an ingest server.

    ``target`` is the real server's address — a ``(host, port)`` tuple
    or a Unix-domain socket path.  The proxy itself always listens on
    TCP (``address`` exposes the bound ``(host, port)``); senders
    connect to the proxy instead of the server.
    """

    def __init__(
        self,
        target: Union[str, os.PathLike, Tuple[str, int]],
        config: Optional[ChaosConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target = target
        self.config = config or ChaosConfig()
        self.stats = ChaosStats()
        self._lock = threading.Lock()
        self._pipes: List[_Pipe] = []
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()

    def _connect_upstream(self) -> socket.socket:
        if isinstance(self.target, tuple):
            return socket.create_connection(self.target, timeout=5.0)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5.0)
        sock.connect(os.fspath(self.target))
        sock.settimeout(None)
        return sock

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _addr = self._sock.accept()
            except OSError:
                return
            if self._closed:
                client.close()
                return
            try:
                upstream = self._connect_upstream()
            except OSError:
                client.close()
                continue
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            pipe = _Pipe(client, upstream)
            with self._lock:
                self.stats.connections += 1
                conn_index = self.stats.connections
                self._pipes.append(pipe)
            threading.Thread(
                target=self._upstream_loop,
                args=(pipe, conn_index),
                name=f"chaos-up-{conn_index}",
                daemon=True,
            ).start()
            threading.Thread(
                target=self._downstream_loop,
                args=(pipe,),
                name=f"chaos-down-{conn_index}",
                daemon=True,
            ).start()

    # -- client -> server: the faulted direction --------------------------------

    def _forward(self, pipe: _Pipe, data: bytes) -> bool:
        try:
            pipe.upstream.sendall(data)
        except OSError:
            pipe.kill(abrupt=False)
            return False
        with self._lock:
            self.stats.bytes_upstream += len(data)
        return True

    def _upstream_loop(self, pipe: _Pipe, conn_index: int) -> None:
        rng = substream(self.config.seed, f"chaos-conn-{conn_index}")
        cfg = self.config
        buffer = bytearray()
        held: Optional[bytes] = None
        frame_index = 0
        try:
            while pipe.alive:
                try:
                    data = pipe.client.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                buffer.extend(data)
                for frame in split_frames(buffer):
                    with self._lock:
                        self.stats.frames += 1
                    frame_index += 1
                    u = rng.random()
                    edge = cfg.reset_prob
                    if u < edge:
                        with self._lock:
                            self.stats.resets += 1
                        pipe.kill()
                        return
                    edge += cfg.partial_prob
                    if u < edge:
                        # Tear the frame: a strict prefix, then RST.
                        cut = 1 + int(rng.random() * (len(frame) - 1))
                        with self._lock:
                            self.stats.partials += 1
                        self._forward(pipe, frame[:cut])
                        pipe.kill()
                        return
                    edge += cfg.dup_prob
                    if u < edge:
                        with self._lock:
                            self.stats.dups += 1
                        if not self._forward(pipe, frame + frame):
                            return
                        continue
                    edge += cfg.reorder_prob
                    # Never hold a connection's first frame: that is the
                    # HELLO, and displacing it would make the server
                    # refuse the unannounced traffic in front of it on
                    # every single reconnect — a livelock, not a fault.
                    if u < edge and held is None and frame_index > 1:
                        # Hold this frame; it goes out after the next.
                        with self._lock:
                            self.stats.reorders += 1
                        held = frame
                        continue
                    edge += cfg.delay_prob
                    if u < edge:
                        with self._lock:
                            self.stats.delays += 1
                        threading.Event().wait(rng.random() * cfg.max_delay_s)
                    out = frame if held is None else frame + held
                    held = None
                    if not self._forward(pipe, out):
                        return
            # Client went away cleanly: flush anything held back plus
            # unparseable tail bytes, then pass the EOF upstream.
            tail = (held or b"") + bytes(buffer)
            if tail:
                self._forward(pipe, tail)
        finally:
            pipe.kill(abrupt=False)

    # -- server -> client: forwarded verbatim -----------------------------------

    def _downstream_loop(self, pipe: _Pipe) -> None:
        try:
            while pipe.alive:
                try:
                    data = pipe.upstream.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                try:
                    pipe.client.sendall(data)
                except OSError:
                    break
                with self._lock:
                    self.stats.bytes_downstream += len(data)
        finally:
            pipe.kill(abrupt=False)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pipes = list(self._pipes)
        try:
            self._sock.close()
        except OSError:
            pass
        for pipe in pipes:
            pipe.kill(abrupt=False)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
