"""The wire protocol: length-prefixed, CRC-framed telemetry messages.

One frame on the wire is::

    MAGIC(2) | type(1) | length(4, big-endian) | crc32(4, big-endian) | payload

where ``length`` is the payload byte count and the CRC covers the type
byte plus the payload — a frame whose header or body was damaged in
flight (or torn by a dying connection) fails validation instead of
decoding into garbage records.  Payloads are compact canonical JSON
(sorted keys, no whitespace): the record fields are ints and short
strings, the control frames are tiny, and canonical bytes keep the
protocol testable byte-for-byte.

Frame types
-----------

``HELLO``    sender -> server: the stream names this connection will
             carry (``{"streams": [...], "sender": name}``).
``WELCOME``  server -> sender: per-stream resume state —
             ``{"acked": {stream: seq}, "credit": {stream: n}}``.  The
             sender discards everything at or below ``acked`` and
             re-sends the rest: this is the resume half of
             at-least-once delivery.
``DATA``     sender -> server: one stream's record batch —
             ``{"s": stream, "r": [[seq, kind, time_ns, pid, [data]]]}``
             (``kind`` as an index into
             :data:`~repro.ingest.records.RECORD_KINDS`).
``ACK``      server -> sender: same shape as WELCOME, sent after each
             DATA/HEARTBEAT so acked sequences and credits stay fresh.
``HEARTBEAT`` either direction: liveness when there is nothing to say.
``EOS``      sender -> server: ``{"s": stream, "final_seq": n}`` — the
             stream carries exactly the sequences ``[0, n)``; once all
             are delivered the stream is at end-of-stream.

The decoder is incremental (feed bytes as they arrive, pop complete
frames) and *unsynchronized by design*: after any framing damage —
wrong magic, CRC mismatch, an oversized length — it raises
:class:`~repro.errors.FrameError` and the only safe recovery is to drop
the connection.  Resynchronizing mid-stream would risk treating payload
bytes as a header, and the reconnect-with-resume protocol makes dropping
the connection cheap.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import FrameError
from repro.ingest.records import RECORD_KINDS, TelemetryRecord

#: Two magic bytes starting every frame (catches cross-protocol garbage
#: and desynchronized streams immediately).
MAGIC = b"\xb5\xc5"

#: Header layout after the magic: type(1) length(4) crc32(4).
_HEADER = struct.Struct(">BLL")
HEADER_BYTES = len(MAGIC) + _HEADER.size

#: Hard frame-size ceiling: a corrupt length field must not make the
#: receiver try to buffer gigabytes before the CRC can condemn it.
MAX_FRAME_BYTES = 8 * 1024 * 1024

FRAME_HELLO = 1
FRAME_WELCOME = 2
FRAME_DATA = 3
FRAME_ACK = 4
FRAME_HEARTBEAT = 5
FRAME_EOS = 6

_KNOWN_TYPES = (
    FRAME_HELLO,
    FRAME_WELCOME,
    FRAME_DATA,
    FRAME_ACK,
    FRAME_HEARTBEAT,
    FRAME_EOS,
)

_KIND_INDEX = {kind: i for i, kind in enumerate(RECORD_KINDS)}


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a type tag and its JSON payload."""

    type: int
    payload: dict


def _payload_bytes(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(frame_type: int, payload: dict) -> bytes:
    """Serialize one frame to wire bytes."""
    if frame_type not in _KNOWN_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    body = _payload_bytes(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    crc = zlib.crc32(bytes([frame_type]) + body)
    return MAGIC + _HEADER.pack(frame_type, len(body), crc) + body


def records_to_payload(
    stream: str, records: Sequence[TelemetryRecord]
) -> dict:
    """DATA payload for one stream's batch (stream name hoisted out of
    each record: every record in a frame shares it)."""
    return {
        "s": stream,
        "r": [
            [r.seq, _KIND_INDEX[r.kind], r.time_ns, r.pid, list(r.data)]
            for r in records
        ],
    }


def records_from_payload(payload: dict) -> Tuple[str, List[TelemetryRecord]]:
    """Decode a DATA payload; malformed bodies raise :class:`FrameError`."""
    try:
        stream = payload["s"]
        records = [
            TelemetryRecord(
                stream=stream,
                seq=int(seq),
                kind=RECORD_KINDS[kind],
                time_ns=int(time_ns),
                pid=int(pid),
                data=tuple(int(x) for x in data),
            )
            for seq, kind, time_ns, pid, data in payload["r"]
        ]
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise FrameError(f"malformed DATA payload: {exc}") from exc
    return stream, records


class FrameDecoder:
    """Incremental frame decoder over an arriving byte stream.

    ``feed`` buffers bytes; ``next_frame`` pops one complete validated
    frame or returns None when more bytes are needed.  Any framing
    damage raises :class:`~repro.errors.FrameError` — the caller must
    then drop the connection (see module docstring).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Frames decoded (receiver-side accounting).
        self.frames = 0

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def next_frame(self) -> Optional[Frame]:
        buf = self._buffer
        if len(buf) < HEADER_BYTES:
            return None
        if bytes(buf[: len(MAGIC)]) != MAGIC:
            raise FrameError(
                f"bad frame magic {bytes(buf[:len(MAGIC)])!r}; "
                "stream is desynchronized"
            )
        frame_type, length, crc = _HEADER.unpack_from(buf, len(MAGIC))
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
                "ceiling (corrupt header)"
            )
        end = HEADER_BYTES + length
        if len(buf) < end:
            return None
        body = bytes(buf[HEADER_BYTES:end])
        if zlib.crc32(bytes([frame_type]) + body) != crc:
            raise FrameError(f"frame CRC mismatch (type {frame_type})")
        if frame_type not in _KNOWN_TYPES:
            raise FrameError(f"unknown frame type {frame_type}")
        del buf[:end]
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"frame payload is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FrameError("frame payload must be a JSON object")
        self.frames += 1
        return Frame(type=frame_type, payload=payload)


def split_frames(buffer: bytearray) -> List[bytes]:
    """Split complete raw frames off the front of ``buffer``, in place.

    The chaos proxy's view of the protocol: it needs frame *boundaries*
    (to duplicate, reorder, or tear whole frames) but deliberately does
    not validate CRCs or decode payloads — a middlebox sees bytes.
    Unparseable bytes (bad magic) are passed through as one opaque blob
    so the endpoint, not the proxy, detects the damage.
    """
    frames: List[bytes] = []
    while len(buffer) >= HEADER_BYTES:
        if bytes(buffer[: len(MAGIC)]) != MAGIC:
            frames.append(bytes(buffer))
            buffer.clear()
            break
        _type, length, _crc = _HEADER.unpack_from(buffer, len(MAGIC))
        end = HEADER_BYTES + min(length, MAX_FRAME_BYTES)
        if len(buffer) < end:
            break
        frames.append(bytes(buffer[:end]))
        del buffer[:end]
    return frames
