"""Server side of the network ingestion plane.

:class:`SocketIngestServer` listens on TCP and/or a Unix-domain socket,
accepts collector connections, and reassembles their framed record
streams into bounded per-stream delivery queues.  The diagnosis service
never sees a socket: it pulls from the server through
:class:`SocketTransport`, which implements the exact pull-transport
protocol :class:`~repro.ingest.feed.TelemetryFeed` already speaks
(``streams`` / ``pull`` / ``at_eos`` / ``can_backpressure``), so the
whole PR-5..8 ingest/diagnosis stack runs unchanged over a real network.

Three mechanisms keep sealed chunks byte-identical to offline no matter
what the wire does:

* **receiver-side dedup** — each stream's records carry consecutive
  sequence numbers; anything at or below the delivery cursor is dropped
  as a duplicate (the price of at-least-once resends), anything ahead of
  it waits in a reorder window and drains contiguously.  The transport
  therefore delivers every record exactly once, in sequence order.
* **credit-based backpressure** — the server advertises per-stream
  credits (``capacity`` minus records held) in every ACK; a compliant
  sender never has more than that many unacked records in flight, so
  server memory is bounded by ``streams * capacity`` regardless of how
  fast collectors push — the bound lives in the protocol, not in
  unbounded OS socket buffers.  Records arriving beyond the advertised
  window are dropped *unacknowledged* (``credit_overruns``): the sender
  re-sends them later, so the bound is hard and lossless.
* **dead-peer detection** — every frame refreshes the owning
  connection's ``last_seen``; a stream whose peer has been silent past
  ``heartbeat_timeout_s`` reports as *dead* in
  :meth:`SocketIngestServer.transport_stats`, and its lack of progress
  feeds the straggler-quarantine machinery
  (:class:`~repro.collector.health.TelemetryGap`) exactly like PR-5's
  dead-stream transports.

The server is intentionally thread-per-connection: collector counts per
pipeline are small, and the per-stream state transitions all happen
under one lock, which is what makes the dedup/credit invariants easy to
defend.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FrameError, IngestError, PeerGone, ProtocolError
from repro.ingest.records import TelemetryRecord
from repro.net.frames import (
    FRAME_ACK,
    FRAME_DATA,
    FRAME_EOS,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    FRAME_WELCOME,
    Frame,
    FrameDecoder,
    encode_frame,
    records_from_payload,
)


@dataclass
class ServerConfig:
    """Operating parameters of one :class:`SocketIngestServer`."""

    #: Per-stream record capacity (delivery queue + reorder window): the
    #: credit pool advertised to senders.
    capacity: int = 4096
    #: A peer silent for longer than this reports as dead (heartbeats
    #: count as traffic, so a healthy idle sender never trips it).
    heartbeat_timeout_s: float = 5.0
    #: Socket receive chunk size.
    recv_bytes: int = 65536

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise IngestError(f"capacity must be positive: {self.capacity}")


@dataclass
class ServerStats:
    """Everything the server did, pure ints (safe to report anywhere)."""

    connections: int = 0
    frames: int = 0
    data_frames: int = 0
    records_received: int = 0
    #: Records dropped by receiver-side dedup (resent after a reconnect,
    #: or duplicated by the network) — the at-least-once tax.
    duplicates: int = 0
    #: Records that arrived ahead of the delivery cursor and waited in
    #: the reorder window.
    reordered: int = 0
    #: Records dropped *unacked* because they exceeded the advertised
    #: credit window (a misbehaving or raced sender; resent later).
    credit_overruns: int = 0
    frame_errors: int = 0
    heartbeats: int = 0
    eos_frames: int = 0
    acks_sent: int = 0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _StreamState:
    """One stream's reassembly state; all access under the server lock."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        #: Next sequence number to deliver (dedup cursor: everything
        #: below it has been delivered exactly once).
        self.next_seq = 0
        #: Received-ahead records awaiting contiguity, keyed by seq.
        self.reorder: Dict[int, TelemetryRecord] = {}
        #: In-order records awaiting a transport pull.
        self.delivered: Deque[TelemetryRecord] = deque()
        #: Total sequence count, once EOS announced it ([0, eos_seq)).
        self.eos_seq: Optional[int] = None
        #: Connection currently carrying this stream (None = never seen
        #: or disconnected).
        self.owner: Optional["_Connection"] = None
        self.connects = 0

    @property
    def held(self) -> int:
        return len(self.delivered) + len(self.reorder)

    @property
    def credit(self) -> int:
        return max(0, self.capacity - self.held)

    @property
    def acked_seq(self) -> int:
        """Highest contiguously received sequence (-1 = nothing yet)."""
        return self.next_seq - 1

    def at_eos(self) -> bool:
        return (
            self.eos_seq is not None
            and self.next_seq >= self.eos_seq
            and not self.delivered
        )


class _Connection:
    """One accepted peer socket plus its send lock and liveness clock."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.streams: List[str] = []
        self.alive = True

    def send_frame(self, data: bytes) -> bool:
        """Best-effort frame send; False when the peer is gone."""
        with self.send_lock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(data)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketIngestServer:
    """Accepts framed record pushes and serves them as a pull transport.

    ``streams`` is the full expected stream-name set — it is the
    transport identity the feed builds its buffers from, so it must be
    known up front (it is: the topology defines it).  ``path`` selects a
    Unix-domain listener, otherwise ``host``/``port`` a TCP one
    (``port=0`` lets the OS pick; read the bound port from
    :attr:`address`).
    """

    def __init__(
        self,
        streams: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[Union[str, os.PathLike]] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        if not streams:
            raise IngestError("a socket ingest server needs at least one stream")
        self.config = config or ServerConfig()
        self._lock = threading.Lock()
        self._data_ready = threading.Condition(self._lock)
        self._streams: Dict[str, _StreamState] = {
            name: _StreamState(name, self.config.capacity)
            for name in streams
        }
        self.stats = ServerStats()
        self._connections: List[_Connection] = []
        self._closed = False
        self._path = os.fspath(path) if path is not None else None
        if self._path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(self._path)
            self.address: Union[str, Tuple[str, int]] = self._path
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host, port))
            self.address = self._sock.getsockname()
        self._sock.listen(16)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ingest-accept", daemon=True
        )
        self._accept_thread.start()

    # -- accept / read loops ----------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._sock.accept()
            except OSError:
                return  # listener closed
            if self._closed:
                sock.close()
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1) \
                if self._path is None else None
            conn = _Connection(sock, peer=str(addr))
            with self._lock:
                self._connections.append(conn)
                self.stats.connections += 1
            threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"ingest-conn-{self.stats.connections}",
                daemon=True,
            ).start()

    def _read_loop(self, conn: _Connection) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                try:
                    data = conn.sock.recv(self.config.recv_bytes)
                except OSError:
                    return
                if not data:
                    return  # peer EOF
                decoder.feed(data)
                while True:
                    try:
                        frame = decoder.next_frame()
                    except FrameError:
                        with self._lock:
                            self.stats.frame_errors += 1
                        return  # poisoned stream: drop the connection
                    if frame is None:
                        break
                    self._handle_frame(conn, frame)
        finally:
            self._drop_connection(conn)

    def _drop_connection(self, conn: _Connection) -> None:
        conn.close()
        with self._lock:
            if conn in self._connections:
                self._connections.remove(conn)
            for name in conn.streams:
                state = self._streams.get(name)
                if state is not None and state.owner is conn:
                    state.owner = None

    # -- frame handling ---------------------------------------------------------

    def _ack_payload(self, names: Sequence[str]) -> dict:
        # The ``eos`` flags give senders *positive* confirmation that an
        # EOS frame was processed; mere ACK arrival proves nothing (an
        # ACK already in flight when the EOS went out looks identical).
        return {
            "acked": {n: self._streams[n].acked_seq for n in names},
            "credit": {n: self._streams[n].credit for n in names},
            "eos": {n: self._streams[n].eos_seq is not None for n in names},
        }

    def _handle_frame(self, conn: _Connection, frame: Frame) -> None:
        conn.last_seen = time.monotonic()
        with self._lock:
            self.stats.frames += 1
        if frame.type == FRAME_HELLO:
            self._handle_hello(conn, frame.payload)
        elif frame.type == FRAME_DATA:
            self._handle_data(conn, frame.payload)
        elif frame.type == FRAME_EOS:
            self._handle_eos(conn, frame.payload)
        elif frame.type == FRAME_HEARTBEAT:
            with self._lock:
                self.stats.heartbeats += 1
                names = list(conn.streams)
                payload = self._ack_payload(names) if names else None
            if payload is not None and conn.send_frame(
                encode_frame(FRAME_ACK, payload)
            ):
                with self._lock:
                    self.stats.acks_sent += 1
        # WELCOME/ACK arriving at the server are protocol violations, but
        # harmless ones; they are counted as frames and ignored.

    def _handle_hello(self, conn: _Connection, payload: dict) -> None:
        names = payload.get("streams")
        if not isinstance(names, list) or not names:
            raise ProtocolError(f"HELLO without streams: {payload!r}")
        unknown = [n for n in names if n not in self._streams]
        if unknown:
            # The peer is pushing streams this server never offered:
            # refuse loudly (a misdirected collector must not be half
            # accepted) by dropping the connection.
            conn.close()
            return
        with self._lock:
            conn.streams = list(names)
            for name in names:
                state = self._streams[name]
                # A new HELLO takes ownership: the old connection, if
                # any, is a zombie of a reconnect (the sender gave up on
                # it); its late frames will be deduped anyway.
                state.owner = conn
                state.connects += 1
            payload_out = self._ack_payload(conn.streams)
        if conn.send_frame(encode_frame(FRAME_WELCOME, payload_out)):
            with self._lock:
                self.stats.acks_sent += 1

    def _handle_data(self, conn: _Connection, payload: dict) -> None:
        stream, records = records_from_payload(payload)
        state = self._streams.get(stream)
        if state is None or stream not in conn.streams:
            conn.close()  # pushing an unannounced stream: refuse
            return
        with self._lock:
            self.stats.data_frames += 1
            self.stats.records_received += len(records)
            delivered_any = False
            for record in records:
                if record.seq < state.next_seq or record.seq in state.reorder:
                    self.stats.duplicates += 1
                    continue
                if state.held >= state.capacity:
                    # Beyond the credit window this sender was told
                    # about: drop unacked, it will be resent.
                    self.stats.credit_overruns += 1
                    continue
                if record.seq == state.next_seq:
                    state.delivered.append(record)
                    state.next_seq += 1
                    delivered_any = True
                    # Drain the reorder window's now-contiguous prefix.
                    while state.next_seq in state.reorder:
                        state.delivered.append(
                            state.reorder.pop(state.next_seq)
                        )
                        state.next_seq += 1
                else:
                    self.stats.reordered += 1
                    state.reorder[record.seq] = record
            ack = self._ack_payload([stream])
            if delivered_any:
                self._data_ready.notify_all()
        if conn.send_frame(encode_frame(FRAME_ACK, ack)):
            with self._lock:
                self.stats.acks_sent += 1

    def _handle_eos(self, conn: _Connection, payload: dict) -> None:
        stream = payload.get("s")
        state = self._streams.get(stream)
        if state is None:
            conn.close()
            return
        try:
            final_seq = int(payload["final_seq"])
        except (KeyError, TypeError, ValueError):
            conn.close()
            return
        with self._lock:
            self.stats.eos_frames += 1
            if state.eos_seq is not None and state.eos_seq != final_seq:
                raise ProtocolError(
                    f"stream {stream!r} announced EOS at {final_seq} after "
                    f"announcing it at {state.eos_seq}"
                )
            state.eos_seq = final_seq
            self._data_ready.notify_all()

    # -- transport / stats ------------------------------------------------------

    def transport(self, poll_wait_s: float = 0.002) -> "SocketTransport":
        """A pull-transport view over this server's streams."""
        return SocketTransport(self, poll_wait_s=poll_wait_s)

    def transport_stats(self) -> Dict[str, dict]:
        """Per-stream connection/progress state for the health report."""
        now = time.monotonic()
        out: Dict[str, dict] = {}
        with self._lock:
            for name in sorted(self._streams):
                state = self._streams[name]
                owner = state.owner
                if owner is None:
                    conn_state = "never" if state.connects == 0 else "disconnected"
                    age = None
                elif not owner.alive:
                    conn_state = "disconnected"
                    age = now - owner.last_seen
                else:
                    age = now - owner.last_seen
                    conn_state = (
                        "dead"
                        if age > self.config.heartbeat_timeout_s
                        else "live"
                    )
                out[name] = {
                    "state": conn_state,
                    "acked_seq": state.acked_seq,
                    "buffered": state.held,
                    "eos": state.eos_seq is not None,
                    "heartbeat_age_s": age,
                    "connects": state.connects,
                }
        return out

    def dead_streams(self) -> Tuple[str, ...]:
        """Streams whose peer is silent past the heartbeat timeout."""
        return tuple(
            name
            for name, info in self.transport_stats().items()
            if info["state"] in ("dead", "disconnected")
        )

    def close(self) -> None:
        """Stop accepting, drop every peer, unlink a Unix socket path."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections)
            self._data_ready.notify_all()
        try:
            self._sock.close()
        except OSError:
            pass
        for conn in connections:
            conn.close()
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __enter__(self) -> "SocketIngestServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SocketTransport:
    """The feed-facing pull protocol over a :class:`SocketIngestServer`.

    ``can_backpressure`` is True with teeth: records the feed does not
    pull stay in the server's bounded queues, credits stop being
    granted, and the *senders* block — backpressure propagates across
    the network instead of ballooning OS buffers.

    ``pull`` on an empty stream waits up to ``poll_wait_s`` for data, so
    the service's pump loop does not spin hot while collectors are
    merely slow (the idle-pump liveness backstop still fires if the
    transport is truly wedged).
    """

    can_backpressure = True

    def __init__(self, server: SocketIngestServer, poll_wait_s: float = 0.002) -> None:
        self.server = server
        self.poll_wait_s = poll_wait_s

    def streams(self) -> Tuple[str, ...]:
        return tuple(sorted(self.server._streams))

    def pull(self, stream: str, max_n: int) -> List[TelemetryRecord]:
        server = self.server
        state = server._streams[stream]
        batch: List[TelemetryRecord] = []
        with server._lock:
            if server._closed:
                raise PeerGone("ingest server is closed")
            if not state.delivered and not state.at_eos():
                server._data_ready.wait(timeout=self.poll_wait_s)
            while state.delivered and len(batch) < max_n:
                batch.append(state.delivered.popleft())
            owner = state.owner if batch else None
            credit_refresh = (
                server._ack_payload([stream]) if owner is not None else None
            )
        if owner is not None and credit_refresh is not None:
            # Freed room is new credit: tell the sender promptly instead
            # of making it wait for its next DATA's ack (best effort —
            # a vanished peer just resyncs credit on reconnect).
            if owner.send_frame(encode_frame(FRAME_ACK, credit_refresh)):
                with server._lock:
                    server.stats.acks_sent += 1
        return batch

    def at_eos(self, stream: str) -> bool:
        with self.server._lock:
            return self.server._streams[stream].at_eos()

    def reset(self) -> None:
        raise IngestError(
            "socket transports cannot replay; restart the senders instead"
        )
