"""Network ingestion plane: framed push transports over real sockets.

Everything before this package moved telemetry inside one process; here
records survive an actual network.  The pieces:

* :mod:`repro.net.frames` — the wire protocol: length-prefixed,
  CRC-framed messages carrying :class:`~repro.ingest.records.TelemetryRecord`
  batches and the control traffic (hello/welcome, acks + credits,
  heartbeats, end-of-stream);
* :mod:`repro.net.sender` — the collector side: a
  :class:`~repro.net.sender.RecordSender` with per-stream sequence
  numbers, a bounded send queue, heartbeats, and exponential-backoff
  reconnect that *resumes from the receiver-acked sequence* —
  at-least-once delivery;
* :mod:`repro.net.server` — the diagnosis side: a
  :class:`~repro.net.server.SocketIngestServer` (TCP and Unix-domain)
  whose accept loop feeds per-stream buffers behind receiver-side
  dedup, exposed to the service as a
  :class:`~repro.net.server.SocketTransport` implementing the existing
  pull-transport protocol with credit-based backpressure;
* :mod:`repro.net.chaos` — a :class:`~repro.net.chaos.ChaosProxy` that
  sits between sender and server injecting seeded byte-level faults
  (resets, partial frames, delay, duplicated and reordered frames) —
  the crashsim philosophy extended to the wire.

The invariant the whole plane defends: at-least-once delivery plus
receiver-side dedup yields exactly-once, in-order application per
stream, so sealed chunks — and therefore journal bytes — are identical
to the same telemetry ingested offline, no matter what the network did.
"""

from repro.net.frames import (
    FRAME_ACK,
    FRAME_DATA,
    FRAME_EOS,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    FRAME_WELCOME,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    encode_frame,
    records_from_payload,
    records_to_payload,
    split_frames,
)
from repro.net.sender import RecordSender, SenderConfig, SenderStats
from repro.net.server import (
    ServerConfig,
    ServerStats,
    SocketIngestServer,
    SocketTransport,
)
from repro.net.chaos import ChaosConfig, ChaosProxy, ChaosStats

__all__ = [
    "FRAME_ACK",
    "FRAME_DATA",
    "FRAME_EOS",
    "FRAME_HEARTBEAT",
    "FRAME_HELLO",
    "FRAME_WELCOME",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "records_from_payload",
    "records_to_payload",
    "split_frames",
    "RecordSender",
    "SenderConfig",
    "SenderStats",
    "ServerConfig",
    "ServerStats",
    "SocketIngestServer",
    "SocketTransport",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosStats",
]
