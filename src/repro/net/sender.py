"""Collector side of the network ingestion plane.

:class:`RecordSender` pushes :class:`~repro.ingest.records.TelemetryRecord`
batches to a :class:`~repro.net.server.SocketIngestServer` over TCP or a
Unix-domain socket.  Its contract is *at-least-once, resumable*:

* every record keeps the per-stream sequence number the collector
  assigned it; the wire never renumbers;
* unacked records stay in a bounded per-stream pending queue; a record
  leaves the queue only when an ACK (or the WELCOME of a reconnect)
  covers its sequence;
* on any connection failure the sender reconnects with jittered
  exponential backoff (the shared :mod:`repro.util.retry` machinery, so
  backoff draws are seeded and replayable), re-sends HELLO, and resumes
  from the *receiver-acked* sequence in the WELCOME — everything newer
  is re-sent.  Duplicates this creates are the server's problem by
  design (receiver-side dedup), which is what keeps sealed chunks
  byte-identical to offline;
* credit advertised in ACKs bounds how many unacked records may be in
  flight per stream, so a slow service backpressures collectors across
  the network instead of filling kernel buffers.

The sender is deliberately single-threaded and caller-driven: ``push``
enqueues, ``pump`` performs bounded I/O, ``finish`` flushes and
announces end-of-stream.  Crash testing hooks into the same
:class:`~repro.service.crashsim.CrashInjector` protocol as the rest of
the stack via ``faults`` — kill points fire at connect/send/ack
boundaries with the frame counter as the coordinate, so a soak can kill
a sender at *every* frame boundary and assert byte-identical journals.
"""

from __future__ import annotations

import os
import socket
import time
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FrameError, IngestError, PeerGone, TransportError
from repro.ingest.records import TelemetryRecord
from repro.net.frames import (
    FRAME_ACK,
    FRAME_DATA,
    FRAME_EOS,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    FRAME_WELCOME,
    FrameDecoder,
    encode_frame,
    records_to_payload,
)
from repro.util.retry import RetryPolicy, retry_call
from repro.util.rng import substream


@dataclass
class SenderConfig:
    """Operating parameters of one :class:`RecordSender`."""

    #: Max records per DATA frame (bounds frame size and re-send cost).
    batch_records: int = 64
    #: Per-stream pending (unacked) queue bound; ``push`` past it raises
    #: — the collector must drain before producing more.
    queue_capacity: int = 65536
    #: Send a HEARTBEAT when the connection has been idle this long.
    heartbeat_interval_s: float = 0.5
    #: Give up on a credit-starved wait (no ACK progress) after this
    #: long and force a reconnect.
    ack_timeout_s: float = 5.0
    #: Socket connect timeout.
    connect_timeout_s: float = 5.0
    #: Reconnect retry ladder (shared semantics with the feed/service).
    max_retries: int = 8
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    #: Seed for the jittered-backoff substream (replayable reconnects).
    jitter_seed: int = 0
    #: Name announced in HELLO (diagnostics only).
    name: str = "sender"

    def __post_init__(self) -> None:
        if self.batch_records <= 0:
            raise IngestError(
                f"batch_records must be positive: {self.batch_records}"
            )
        if self.queue_capacity <= 0:
            raise IngestError(
                f"queue_capacity must be positive: {self.queue_capacity}"
            )


@dataclass
class SenderStats:
    """Wire-level accounting, pure ints/floats."""

    connects: int = 0
    reconnects: int = 0
    frames_sent: int = 0
    records_sent: int = 0
    #: Records sent more than once (the at-least-once resend tax).
    records_resent: int = 0
    records_acked: int = 0
    acks_received: int = 0
    heartbeats_sent: int = 0
    send_failures: int = 0
    backoff_total_s: float = 0.0

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _StreamOut:
    """One stream's outbound state."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Unacked records, oldest first.  ``pending[:unsent]`` are in
        #: flight on the current connection; the rest await credit.
        self.pending: Deque[TelemetryRecord] = deque()
        self.unsent = 0
        #: Credit last advertised by the server (may-be-in-flight cap).
        self.credit = 0
        #: Highest sequence ever pushed (for EOS's final_seq).
        self.highest_seq = -1
        #: Records this stream has ever sent at least once (so a resend
        #: can be told apart from a first send).
        self.sent_through = -1
        #: The server positively confirmed (via an ACK's ``eos`` flag)
        #: that this stream's EOS frame was processed.
        self.eos_confirmed = False

    @property
    def inflight(self) -> int:
        return self.unsent

    def prune_acked(self, acked_seq: int) -> int:
        """Drop pending records at or below ``acked_seq``; return count."""
        dropped = 0
        while self.pending and self.pending[0].seq <= acked_seq:
            self.pending.popleft()
            dropped += 1
        self.unsent = max(0, self.unsent - dropped)
        return dropped


class RecordSender:
    """Framed, resumable record push over one socket connection.

    ``address`` is a ``(host, port)`` tuple for TCP or a filesystem path
    for a Unix-domain socket.  ``streams`` must name every stream this
    sender will carry (they go in HELLO; the server refuses strangers).

    ``sleep`` and ``clock`` are injectable for tests; ``faults`` is an
    optional crash injector honouring the ``kill(point, chunk)``
    protocol of :class:`~repro.service.crashsim.CrashInjector`.

    ``clock_chaos`` is an optional :class:`~repro.time.chaos.ClockChaos`:
    pushed records are warped through their stream's fault schedule
    before they enter the send queue, so the fault originates at the
    sender's host clock — upstream of framing, resume and dedup, exactly
    where a real drifting or stepping collector clock lives.
    """

    def __init__(
        self,
        address: Union[str, os.PathLike, Tuple[str, int]],
        streams: Sequence[str],
        config: Optional[SenderConfig] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        faults=None,
        clock_chaos=None,
    ) -> None:
        if not streams:
            raise IngestError("a record sender needs at least one stream")
        self.address = address
        self.config = config or SenderConfig()
        self.sleep = sleep if sleep is not None else time.sleep
        self.clock = clock
        self.faults = faults
        self.clock_chaos = clock_chaos
        self.stats = SenderStats()
        self._streams: Dict[str, _StreamOut] = {
            name: _StreamOut(name) for name in streams
        }
        self._order: Tuple[str, ...] = tuple(sorted(self._streams))
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._last_send = self.clock()
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            base_s=self.config.backoff_base_s,
            cap_s=self.config.backoff_cap_s,
        )
        self._rng = substream(
            self.config.jitter_seed, f"net-sender-{self.config.name}"
        )
        self._finished = False
        self._closed = False

    # -- crash hooks ------------------------------------------------------------

    def _kill(self, point: str) -> None:
        if self.faults is not None:
            # The frame counter is the crash coordinate: monotone,
            # deterministic for a given record set, and fine-grained
            # enough to hit every frame boundary.
            self.faults.kill(point, self.stats.frames_sent)

    # -- queueing ---------------------------------------------------------------

    def push(self, record: TelemetryRecord) -> None:
        """Enqueue one record for delivery (does no I/O)."""
        if self.clock_chaos is not None:
            # Warp before queueing: a crashed-and-resumed sender replays
            # the identical warped record (the warp is a pure function of
            # the true timestamp), so clock chaos adds no nondeterminism.
            record = self.clock_chaos.warp_record(record)
        state = self._streams.get(record.stream)
        if state is None:
            raise IngestError(
                f"record for undeclared stream {record.stream!r}"
            )
        if self._finished:
            raise IngestError("cannot push after finish()")
        if len(state.pending) >= self.config.queue_capacity:
            raise IngestError(
                f"stream {record.stream!r} send queue is full "
                f"({self.config.queue_capacity} pending records)"
            )
        state.pending.append(record)
        state.highest_seq = max(state.highest_seq, record.seq)

    def push_all(self, records: Sequence[TelemetryRecord]) -> None:
        for record in records:
            self.push(record)

    def pending_records(self) -> int:
        return sum(len(s.pending) for s in self._streams.values())

    # -- connection management --------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._decoder = FrameDecoder()
        # Anything in flight on the dead connection may or may not have
        # arrived; the WELCOME of the next connection will say.  Until
        # then it is all unsent again.
        for state in self._streams.values():
            state.unsent = 0
            state.credit = 0

    def _connect_once(self) -> None:
        self._disconnect()
        if isinstance(self.address, tuple):
            sock = socket.create_connection(
                self.address, timeout=self.config.connect_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.config.connect_timeout_s)
            sock.connect(os.fspath(self.address))
        sock.settimeout(self.config.ack_timeout_s)
        self._sock = sock
        try:
            hello = {
                "streams": list(self._order),
                "sender": self.config.name,
            }
            self._send_raw(encode_frame(FRAME_HELLO, hello))
            welcome = self._recv_frame_blocking()
            if welcome is None or welcome.type != FRAME_WELCOME:
                raise TransportError(
                    "server did not answer HELLO with WELCOME"
                )
            self._apply_ack(welcome.payload)
        except (OSError, TransportError):
            self._disconnect()
            raise
        self.stats.connects += 1
        self._kill("net-connect")

    def connect(self) -> None:
        """Connect (or reconnect) with jittered exponential backoff."""
        if self._closed:
            raise IngestError("sender is closed")
        if self.connected:
            return

        def on_failure(exc, attempt):
            self.stats.send_failures += 1

        def on_retry(delay):
            self.stats.reconnects += 1
            self.stats.backoff_total_s += delay

        retry_call(
            self._connect_once,
            self._retry_policy,
            self._rng,
            sleep=self.sleep,
            retry_on=(OSError, TransportError),
            on_failure=on_failure,
            on_retry=on_retry,
            give_up=lambda exc, attempts: PeerGone(
                f"could not reach {self.address!r} after "
                f"{attempts} attempts: {exc}"
            ),
        )

    # -- wire primitives --------------------------------------------------------

    def _send_raw(self, data: bytes) -> None:
        if self._sock is None:
            raise TransportError("not connected")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self._last_send = self.clock()

    def _recv_frame_blocking(self):
        """Receive exactly one frame, honouring the socket timeout."""
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise TransportError("timed out waiting for server") from exc
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not data:
                raise PeerGone("server closed the connection")
            self._decoder.feed(data)

    def _apply_ack(self, payload: dict) -> None:
        acked = payload.get("acked", {})
        credit = payload.get("credit", {})
        for name, seq in acked.items():
            state = self._streams.get(name)
            if state is not None:
                self.stats.records_acked += state.prune_acked(int(seq))
        for name, n in credit.items():
            state = self._streams.get(name)
            if state is not None:
                state.credit = int(n)
        for name, flag in payload.get("eos", {}).items():
            state = self._streams.get(name)
            if state is not None and flag:
                state.eos_confirmed = True
        self.stats.acks_received += 1
        self._kill("net-after-ack")

    def _drain_acks(self) -> None:
        """Consume whatever ACKs have already arrived, without blocking."""
        if self._sock is None:
            return
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    data = self._sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError as exc:
                    raise TransportError(f"recv failed: {exc}") from exc
                if not data:
                    raise PeerGone("server closed the connection")
                self._decoder.feed(data)
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.config.ack_timeout_s)
        while True:
            frame = self._decoder.next_frame()
            if frame is None:
                break
            if frame.type in (FRAME_ACK, FRAME_WELCOME):
                self._apply_ack(frame.payload)

    def _wait_for_ack(self) -> None:
        """Block for one server frame (used when credit-starved)."""
        frame = self._recv_frame_blocking()
        if frame.type in (FRAME_ACK, FRAME_WELCOME):
            self._apply_ack(frame.payload)

    # -- the pump ---------------------------------------------------------------

    def _send_ready_batches(self) -> int:
        """Send every batch current credit allows; return records sent."""
        sent = 0
        for name in self._order:
            state = self._streams[name]
            while state.unsent < len(state.pending):
                room = state.credit - state.inflight
                if room <= 0:
                    break
                take = min(
                    room,
                    self.config.batch_records,
                    len(state.pending) - state.unsent,
                )
                batch = [
                    state.pending[state.unsent + i] for i in range(take)
                ]
                self._kill("net-before-send")
                self._send_raw(
                    encode_frame(FRAME_DATA, records_to_payload(name, batch))
                )
                state.unsent += take
                sent += take
                self.stats.frames_sent += 1
                self.stats.records_sent += take
                resent = sum(
                    1 for r in batch if r.seq <= state.sent_through
                )
                self.stats.records_resent += resent
                state.sent_through = max(
                    state.sent_through, batch[-1].seq
                )
                self._kill("net-after-send")
        return sent

    def pump(self) -> int:
        """One bounded I/O round: connect if needed, drain ACKs, send
        what credit allows, heartbeat if idle.  Returns records sent.

        Connection failures inside the round trigger an immediate
        backoff-reconnect (resume-from-acked), after which the round is
        considered done — the next ``pump`` continues from the resumed
        state.
        """
        if self._closed:
            raise IngestError("sender is closed")
        self.connect()
        try:
            self._drain_acks()
            sent = self._send_ready_batches()
            starved = any(
                s.unsent < len(s.pending) and s.credit - s.inflight <= 0
                for s in self._streams.values()
            )
            if sent == 0 and starved:
                # Nothing sendable until the server frees room: block
                # for one ACK instead of spinning (its timeout converts
                # a wedged server into a reconnect).
                self._wait_for_ack()
                sent = self._send_ready_batches()
            if (
                self.clock() - self._last_send
                > self.config.heartbeat_interval_s
            ):
                self._send_raw(encode_frame(FRAME_HEARTBEAT, {}))
                self.stats.frames_sent += 1
                self.stats.heartbeats_sent += 1
            return sent
        except (OSError, TransportError):
            self.stats.send_failures += 1
            self._disconnect()
            self.connect()
            return 0

    def flush(self, timeout_s: float = 30.0) -> None:
        """Pump until every pushed record has been acked."""
        deadline = self.clock() + timeout_s
        while self.pending_records() > 0:
            if self.clock() > deadline:
                raise IngestError(
                    f"flush timed out with {self.pending_records()} "
                    "records unacked"
                )
            self.pump()

    def _eos_confirmed_everywhere(self) -> bool:
        return all(s.eos_confirmed for s in self._streams.values())

    def finish(self, timeout_s: float = 30.0) -> None:
        """Flush everything, then announce end-of-stream for each stream.

        EOS delivery is confirmed *positively*: the server marks every
        stream whose EOS it has processed with an ``eos`` flag in each
        ACK, and finish only returns once every stream's flag has come
        back true.  Waiting for any ACK after the EOS frames is not
        enough — an ACK already in flight when the EOS went out (e.g. a
        credit refresh from the service's pull loop) arrives first and
        proves nothing, and a fault eating the EOS frames right then
        would strand the server waiting for an end that never comes.
        On failure or non-confirmation the finish sequence is retried
        over a fresh connection — duplicate EOS frames with the same
        final sequence are valid protocol.
        """
        deadline = self.clock() + timeout_s
        self.flush(timeout_s=timeout_s)
        while not self._eos_confirmed_everywhere():
            if self.clock() > deadline:
                raise IngestError("finish timed out announcing EOS")
            try:
                self.connect()
                for name in self._order:
                    state = self._streams[name]
                    if state.eos_confirmed:
                        continue
                    self._send_raw(
                        encode_frame(
                            FRAME_EOS,
                            {"s": name, "final_seq": state.highest_seq + 1},
                        )
                    )
                    self.stats.frames_sent += 1
                # A HEARTBEAT after the EOS frames provokes a fresh ACK
                # carrying the eos flags.
                self._send_raw(encode_frame(FRAME_HEARTBEAT, {}))
                self.stats.frames_sent += 1
                self.stats.heartbeats_sent += 1
                while (
                    not self._eos_confirmed_everywhere()
                    and self.clock() <= deadline
                ):
                    self._wait_for_ack()
            except (OSError, TransportError):
                self.stats.send_failures += 1
                self._disconnect()
        self._finished = True

    def close(self) -> None:
        self._closed = True
        self._disconnect()

    def __enter__(self) -> "RecordSender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
