"""AutoFocus-style hierarchical heavy hitters, uni- and multi-dimensional.

Follows Estan, Savage & Varghese, "Automatically inferring patterns of
resource consumption in network traffic" (SIGCOMM 2003), which the paper
adapts for causal-pattern aggregation:

* **Unidimensional**: aggregate leaf weights up each hierarchy; a node is a
  *cluster* when its subtree weight reaches the threshold; *compression*
  reports only nodes whose weight is not already explained by reported
  descendants (residual >= threshold).
* **Multidimensional**: candidate clusters are combinations of per-
  dimension unidimensional clusters; true weights are accumulated by
  walking, for each item, the cross product of its per-dimension cluster
  ancestors; compression then works on the specificity-ordered candidate
  list with the same residual rule.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.aggregation.hierarchy import ancestors
from repro.errors import AggregationError


@dataclass(frozen=True)
class Cluster:
    """A reported aggregate: per-dimension nodes plus weights."""

    nodes: Tuple[object, ...]
    weight: float
    residual: float

    @property
    def depth(self) -> int:
        return sum(node.depth for node in self.nodes)

    def contains(self, other: "Cluster") -> bool:
        return all(
            mine.contains_node(theirs)
            for mine, theirs in zip(self.nodes, other.nodes)
        )

    def __str__(self) -> str:
        return " ".join(str(node) for node in self.nodes)


def unidimensional_clusters(
    leaf_weights: Dict[Hashable, float],
    to_leaf_node: Callable[[Hashable], object],
    threshold: float,
) -> Dict[object, float]:
    """All hierarchy nodes whose subtree weight reaches ``threshold``.

    The dimension root is always included so multidimensional candidates
    can fall back to "any" on dimensions without concentrated weight.
    """
    if threshold <= 0:
        raise AggregationError(f"threshold must be positive, got {threshold}")
    node_weights: Dict[object, float] = defaultdict(float)
    root = None
    for leaf, weight in leaf_weights.items():
        for node in ancestors(to_leaf_node(leaf)):
            node_weights[node] += weight
            root = node  # last ancestor is the root
    significant = {
        node: weight for node, weight in node_weights.items() if weight >= threshold
    }
    if root is not None:
        significant.setdefault(root, node_weights[root])
    return significant


def compress_unidimensional(
    significant: Dict[object, float], threshold: float
) -> List[Tuple[object, float, float]]:
    """Residual compression: (node, weight, residual) kept when residual
    reaches the threshold.  Most-specific nodes are processed first."""
    ordered = sorted(significant.items(), key=lambda kv: -kv[0].depth)
    reported: List[Tuple[object, float, float]] = []
    for node, weight in ordered:
        explained = sum(
            residual
            for other, _w, residual in reported
            if node.contains_node(other)
        )
        residual = weight - explained
        if residual >= threshold:
            reported.append((node, weight, residual))
    return reported


@dataclass
class MultiAutoFocus:
    """Multidimensional AutoFocus over weighted items.

    ``to_leaf_nodes`` maps each item to its per-dimension leaf nodes; items
    are any hashable payloads paired with weights.  The reporting threshold
    is ``threshold_fraction`` of the items' total weight, unless an absolute
    ``threshold`` is passed to :meth:`run` (used by the two-phase pattern
    pipeline, where significance is defined against the *global* score).
    """

    to_leaf_nodes: Callable[[Hashable], Tuple[object, ...]]
    threshold_fraction: float = 0.01
    max_ancestor_fanout: int = 8
    #: Per-item cap on the candidate cross product.  When an item's options
    #: multiply out beyond this, the longest dimensions are trimmed (keeping
    #: the most specific nodes plus the root), trading cluster granularity
    #: for bounded runtime.  High-dimensional single-pass runs need this;
    #: the decoupled pipeline practically never hits it.
    max_combos_per_item: int = 4_096

    def run(
        self,
        items: Sequence[Tuple[Hashable, float]],
        threshold: Optional[float] = None,
    ) -> List[Cluster]:
        """Return compressed multidimensional clusters, highest residual first."""
        if not 0 < self.threshold_fraction <= 1:
            raise AggregationError(
                f"threshold fraction must be in (0, 1], got {self.threshold_fraction}"
            )
        if not items:
            return []
        total = sum(weight for _item, weight in items)
        if total <= 0:
            return []
        if threshold is None:
            threshold = total * self.threshold_fraction
        if threshold <= 0:
            raise AggregationError(f"threshold must be positive, got {threshold}")

        leaves = [(self.to_leaf_nodes(item), weight) for item, weight in items]
        n_dims = len(leaves[0][0])

        # Pass 1: unidimensional significant nodes per dimension, with
        # chain pruning: a node whose weight does not exceed its heaviest
        # significant child is redundant — any combination using it scores
        # the same as the more specific combination, so residual
        # compression would never report it.  Pruning keeps the candidate
        # cross product small.
        per_dim_significant: List[Dict[object, float]] = []
        for d in range(n_dims):
            node_weights: Dict[object, float] = defaultdict(float)
            for nodes, weight in leaves:
                for node in ancestors(nodes[d]):
                    node_weights[node] += weight
            significant = {
                node: w for node, w in node_weights.items() if w >= threshold
            }
            root = next(n for n in node_weights if n.depth == 0)
            significant.setdefault(root, node_weights[root])
            child_max: Dict[object, float] = {}
            for node, weight in significant.items():
                parent = node.parent()
                if parent is not None and parent in significant:
                    if weight > child_max.get(parent, 0.0):
                        child_max[parent] = weight
            pruned = {
                node: weight
                for node, weight in significant.items()
                if node.depth == 0 or weight > child_max.get(node, 0.0)
            }
            per_dim_significant.append(pruned)

        # Pass 2: true weights of candidate combinations, accumulated by
        # walking each item's significant-ancestor cross product.
        combo_weights: Dict[Tuple[object, ...], float] = defaultdict(float)
        for nodes, weight in leaves:
            options: List[List[object]] = []
            for d in range(n_dims):
                chain = [
                    node
                    for node in ancestors(nodes[d])
                    if node in per_dim_significant[d]
                ]
                options.append(chain[: self.max_ancestor_fanout])
            combos = 1
            for chain in options:
                combos *= max(1, len(chain))
            while combos > self.max_combos_per_item:
                longest = max(options, key=len)
                if len(longest) <= 2:
                    break
                # Keep the most specific node and the most general one.
                combos //= len(longest)
                trimmed = [longest[0], longest[-1]]
                options[options.index(longest)] = trimmed
                combos *= 2
            for combo in product(*options):
                combo_weights[combo] += weight

        candidates = {
            combo: weight
            for combo, weight in combo_weights.items()
            if weight >= threshold
        }

        # Pass 3: compression by residual, most-specific first.
        ordered = sorted(
            candidates.items(),
            key=lambda kv: (-sum(n.depth for n in kv[0]), -kv[1]),
        )
        reported: List[Cluster] = []
        for combo, weight in ordered:
            probe = Cluster(nodes=combo, weight=weight, residual=0.0)
            explained = sum(
                cluster.residual for cluster in reported if probe.contains(cluster)
            )
            residual = weight - explained
            if residual >= threshold:
                reported.append(
                    Cluster(nodes=combo, weight=weight, residual=residual)
                )
        reported.sort(key=lambda c: -c.residual)
        return reported
