"""Causal-pattern aggregation (section 4.4, Figure 14).

Input: packet-level causal relations
``<culprit flow, culprit location> -> <victim flow, victim location>: score``.
Output: a short ranked list of patterns
``<culprit flow aggregate, culprit location set> ->
<victim flow aggregate, victim location set>: score``.

The paper's key speed-up is *decoupling*: rather than one AutoFocus run
over all twelve dimensions, it first groups relations by exact culprit
(flow, location) and aggregates each group's victim dimensions, then
aggregates the resulting intermediates over the culprit dimensions.  Both
the decoupled pipeline and the single-pass twelve-dimension variant are
implemented; the ablation bench compares them.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregation.autofocus import Cluster, MultiAutoFocus
from repro.aggregation.hierarchy import (
    BinaryPortNode,
    LocationNode,
    PortNode,
    PrefixNode,
    ProtoNode,
)
from repro.core.report import CausalRelation
from repro.errors import AggregationError
from repro.nfv.packet import FiveTuple

#: Wildcard five-tuple used when a relation has no culprit flow (pure
#: local culprits with unknown packet identities).
_ANY_FLOW = None


@dataclass(frozen=True)
class FlowAggregate:
    """Aggregated five-tuple: prefixes, port ranges, protocol set."""

    src: PrefixNode
    dst: PrefixNode
    src_port: PortNode
    dst_port: PortNode
    proto: ProtoNode

    def __str__(self) -> str:
        return f"{self.src} {self.dst} {self.proto} {self.src_port} {self.dst_port}"

    def matches(self, flow: FiveTuple) -> bool:
        return (
            self.src.contains(flow.src_ip)
            and self.dst.contains(flow.dst_ip)
            and self.src_port.contains(flow.src_port)
            and self.dst_port.contains(flow.dst_port)
            and self.proto.contains(flow.proto)
        )


@dataclass(frozen=True)
class Pattern:
    """One aggregated causal pattern with its score."""

    culprit: FlowAggregate
    culprit_location: LocationNode
    victim: FlowAggregate
    victim_location: LocationNode
    score: float

    def __str__(self) -> str:
        return (
            f"{self.culprit} {self.culprit_location} => "
            f"{self.victim} {self.victim_location}"
        )


@dataclass
class AggregationResult:
    """Patterns plus bookkeeping for effectiveness reports (section 6.4)."""

    patterns: List[Pattern]
    n_relations: int
    n_intermediate: int
    runtime_s: float


def _flow_leaf_nodes(
    flow: Optional[FiveTuple], adaptive_ports: bool = False
) -> Tuple[object, ...]:
    port_type = BinaryPortNode if adaptive_ports else PortNode
    if flow is None:
        return (
            PrefixNode(0, 0),
            PrefixNode(0, 0),
            port_type.any(),
            port_type.any(),
            ProtoNode.any(),
        )
    return (
        PrefixNode.leaf(flow.src_ip),
        PrefixNode.leaf(flow.dst_ip),
        port_type.leaf(flow.src_port),
        port_type.leaf(flow.dst_port),
        ProtoNode.leaf(flow.proto),
    )


def _location_leaf(location: str, nf_types: Dict[str, str]) -> LocationNode:
    type_name = nf_types.get(location, "source")
    return LocationNode.leaf(location, type_name)


def _cluster_to_flow_aggregate(nodes: Sequence[object]) -> FlowAggregate:
    return FlowAggregate(
        src=nodes[0], dst=nodes[1], src_port=nodes[2], dst_port=nodes[3], proto=nodes[4]
    )


class PatternAggregator:
    """Two-phase (decoupled) causal-pattern aggregation."""

    def __init__(
        self,
        nf_types: Dict[str, str],
        threshold_fraction: float = 0.01,
        adaptive_ports: bool = False,
    ) -> None:
        if not 0 < threshold_fraction <= 1:
            raise AggregationError(
                f"threshold fraction must be in (0, 1], got {threshold_fraction}"
            )
        self.nf_types = dict(nf_types)
        self.threshold_fraction = threshold_fraction
        #: Use binary (adaptive) port ranges instead of the paper's static
        #: well-known/ephemeral split — the optimisation section 6.4
        #: suggests for merging per-port patterns.
        self.adaptive_ports = adaptive_ports

    # -- phase 1: victim-side aggregation per culprit -------------------------

    def _victim_autofocus(self) -> MultiAutoFocus:
        def to_nodes(item) -> Tuple[object, ...]:
            victim_flow, victim_location = item
            return _flow_leaf_nodes(victim_flow, self.adaptive_ports) + (
                _location_leaf(victim_location, self.nf_types),
            )

        return MultiAutoFocus(
            to_leaf_nodes=to_nodes, threshold_fraction=self.threshold_fraction
        )

    def _culprit_autofocus(self) -> MultiAutoFocus:
        def to_nodes(item) -> Tuple[object, ...]:
            culprit_flow, culprit_location = item
            return _flow_leaf_nodes(culprit_flow, self.adaptive_ports) + (
                _location_leaf(culprit_location, self.nf_types),
            )

        return MultiAutoFocus(
            to_leaf_nodes=to_nodes, threshold_fraction=self.threshold_fraction
        )

    def aggregate(self, relations: Sequence[CausalRelation]) -> AggregationResult:
        """Run the decoupled two-phase aggregation.

        Significance is measured against the *global* score total.  Culprit
        groups whose whole score is below the threshold skip phase-1
        AutoFocus — their victim leaves pass straight through to phase 2,
        where aggregation across culprits can still surface them.
        """
        started = time.perf_counter()
        grand_total = sum(r.score for r in relations)
        if grand_total <= 0:
            return AggregationResult(
                patterns=[], n_relations=len(relations), n_intermediate=0, runtime_s=0.0
            )
        threshold = grand_total * self.threshold_fraction

        by_culprit: Dict[Tuple[Optional[FiveTuple], str], Dict] = defaultdict(
            lambda: defaultdict(float)
        )
        for relation in relations:
            key = (relation.culprit_flow, relation.culprit_location)
            by_culprit[key][(relation.victim_flow, relation.victim_location)] += (
                relation.score
            )

        victim_af = self._victim_autofocus()
        # Intermediates: (culprit key, victim aggregate node tuple, score).
        intermediates: List[Tuple[Tuple, Tuple, float]] = []
        for culprit_key, victim_weights in by_culprit.items():
            group_total = sum(victim_weights.values())
            if len(victim_weights) == 1:
                (victim_flow, victim_location), score = next(
                    iter(victim_weights.items())
                )
                leaf_nodes = _flow_leaf_nodes(victim_flow, self.adaptive_ports) + (
                    _location_leaf(victim_location, self.nf_types),
                )
                intermediates.append((culprit_key, leaf_nodes, score))
                continue
            if group_total < threshold:
                # Sub-threshold culprit: compress its victims to the most
                # specific aggregate covering the whole group.  Culprits
                # with the same victim spread then share an intermediate
                # key, so phase 2 can still merge them into a significant
                # pattern (this is where a pure leaf passthrough would
                # silently lose cross-culprit aggregates).
                clusters = victim_af.run(
                    list(victim_weights.items()), threshold=group_total
                )
                if clusters:
                    canonical = max(
                        clusters, key=lambda c: sum(n.depth for n in c.nodes)
                    )
                    intermediates.append((culprit_key, canonical.nodes, group_total))
                else:
                    for (victim_flow, victim_location), score in victim_weights.items():
                        leaf_nodes = _flow_leaf_nodes(
                            victim_flow, self.adaptive_ports
                        ) + (_location_leaf(victim_location, self.nf_types),)
                        intermediates.append((culprit_key, leaf_nodes, score))
                continue
            clusters = victim_af.run(
                list(victim_weights.items()), threshold=threshold
            )
            if not clusters:
                # Group above threshold but too dispersed to cluster below
                # the root: keep the root aggregate so the score survives.
                port_type = BinaryPortNode if self.adaptive_ports else PortNode
                root_nodes = (
                    PrefixNode(0, 0),
                    PrefixNode(0, 0),
                    port_type.any(),
                    port_type.any(),
                    ProtoNode.any(),
                    LocationNode.any(),
                )
                intermediates.append((culprit_key, root_nodes, group_total))
                continue
            for cluster in clusters:
                intermediates.append((culprit_key, cluster.nodes, cluster.residual))

        # Phase 2: aggregate culprit dimensions within identical victim
        # aggregates.
        by_victim_aggregate: Dict[Tuple, List[Tuple[Tuple, float]]] = defaultdict(list)
        for culprit_key, victim_nodes, score in intermediates:
            by_victim_aggregate[victim_nodes].append((culprit_key, score))

        culprit_af = self._culprit_autofocus()
        patterns: List[Pattern] = []
        for victim_nodes, culprit_items in by_victim_aggregate.items():
            merged: Dict[Tuple, float] = defaultdict(float)
            for culprit_key, score in culprit_items:
                merged[culprit_key] += score
            for cluster in culprit_af.run(list(merged.items()), threshold=threshold):
                patterns.append(
                    Pattern(
                        culprit=_cluster_to_flow_aggregate(cluster.nodes[:5]),
                        culprit_location=cluster.nodes[5],
                        victim=_cluster_to_flow_aggregate(victim_nodes[:5]),
                        victim_location=victim_nodes[5],
                        score=cluster.residual,
                    )
                )
        patterns.sort(key=lambda p: -p.score)
        return AggregationResult(
            patterns=patterns,
            n_relations=len(relations),
            n_intermediate=len(intermediates),
            runtime_s=time.perf_counter() - started,
        )

    def aggregate_single_pass(
        self, relations: Sequence[CausalRelation]
    ) -> AggregationResult:
        """Single AutoFocus over all twelve dimensions (ablation baseline)."""
        started = time.perf_counter()

        def to_nodes(item) -> Tuple[object, ...]:
            culprit_flow, culprit_location, victim_flow, victim_location = item
            return (
                _flow_leaf_nodes(culprit_flow, self.adaptive_ports)
                + (_location_leaf(culprit_location, self.nf_types),)
                + _flow_leaf_nodes(victim_flow, self.adaptive_ports)
                + (_location_leaf(victim_location, self.nf_types),)
            )

        weights: Dict[Tuple, float] = defaultdict(float)
        for relation in relations:
            key = (
                relation.culprit_flow,
                relation.culprit_location,
                relation.victim_flow,
                relation.victim_location,
            )
            weights[key] += relation.score
        autofocus = MultiAutoFocus(
            to_leaf_nodes=to_nodes, threshold_fraction=self.threshold_fraction
        )
        clusters = autofocus.run(list(weights.items()))
        patterns = [
            Pattern(
                culprit=_cluster_to_flow_aggregate(cluster.nodes[:5]),
                culprit_location=cluster.nodes[5],
                victim=_cluster_to_flow_aggregate(cluster.nodes[6:11]),
                victim_location=cluster.nodes[11],
                score=cluster.residual,
            )
            for cluster in clusters
        ]
        patterns.sort(key=lambda p: -p.score)
        return AggregationResult(
            patterns=patterns,
            n_relations=len(relations),
            n_intermediate=0,
            runtime_s=time.perf_counter() - started,
        )
