"""Running culprit tallies: the always-on service's aggregation state.

:class:`~repro.aggregation.patterns.PatternAggregator` answers "what are
the dominant causal patterns in this batch of relations" — an offline,
whole-batch question.  A continuously-running service needs the
longitudinal complement: *who has been hurting us, by how much, since the
run began*.  :class:`CulpritTally` accumulates per-(kind, location) blame
scores, victim counts per NF, and confidence mass across every diagnosed
chunk, and — crucially for crash-only operation — serialises to a pure-JSON
payload so it rides inside the service checkpoint.  Accumulation order is
deterministic (chunk order, then diagnosis order, then culprit order), so
a checkpoint-restored tally continues bit-identically: restoring the
float sums from JSON (repr round-trip is exact) and adding the same chunks
in the same order yields the same doubles as an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.diagnosis import VictimDiagnosis
from repro.errors import AggregationError

_PAYLOAD_VERSION = 1


@dataclass
class TallyEntry:
    """Accumulated blame for one (kind, location) culprit identity."""

    score: float = 0.0
    count: int = 0
    #: Sum of score * confidence — mean confidence falls out as
    #: ``confidence_mass / score`` without storing per-culprit values.
    confidence_mass: float = 0.0

    @property
    def mean_confidence(self) -> float:
        if self.score <= 0:
            return 1.0
        return self.confidence_mass / self.score


class CulpritTally:
    """Checkpointable running aggregation over diagnosed chunks."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], TallyEntry] = {}
        self._victims_per_nf: Dict[str, int] = {}
        self.victims = 0
        self.culprits = 0
        self.total_score = 0.0

    # -- accumulation ---------------------------------------------------------

    def update(self, diagnoses: Iterable[VictimDiagnosis]) -> None:
        for diagnosis in diagnoses:
            self.victims += 1
            nf = diagnosis.victim.nf
            self._victims_per_nf[nf] = self._victims_per_nf.get(nf, 0) + 1
            for culprit in diagnosis.culprits:
                key = (culprit.kind, culprit.location)
                entry = self._entries.get(key)
                if entry is None:
                    entry = self._entries[key] = TallyEntry()
                entry.score += culprit.score
                entry.count += 1
                entry.confidence_mass += culprit.score * culprit.confidence
                self.culprits += 1
                self.total_score += culprit.score

    def merge(self, other: "CulpritTally") -> None:
        """Fold another tally in (sharded services reconciling)."""
        for key, entry in other._entries.items():
            mine = self._entries.get(key)
            if mine is None:
                mine = self._entries[key] = TallyEntry()
            mine.score += entry.score
            mine.count += entry.count
            mine.confidence_mass += entry.confidence_mass
        for nf, count in other._victims_per_nf.items():
            self._victims_per_nf[nf] = self._victims_per_nf.get(nf, 0) + count
        self.victims += other.victims
        self.culprits += other.culprits
        self.total_score += other.total_score

    # -- queries --------------------------------------------------------------

    def top(self, n: int = 10) -> List[Tuple[str, str, TallyEntry]]:
        """Heaviest (kind, location) offenders, ties broken lexically."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1].score, kv[0])
        )
        return [(kind, loc, entry) for (kind, loc), entry in ranked[:n]]

    def entries(self) -> List[Tuple[Tuple[str, str], TallyEntry]]:
        """Every (kind, location) entry, sorted — the fleet-rollup feed."""
        return sorted(self._entries.items())

    def victims_per_nf(self) -> Dict[str, int]:
        """Victim counts per NF, sorted copy (rollup provenance)."""
        return dict(sorted(self._victims_per_nf.items()))

    def victims_at(self, nf: str) -> int:
        return self._victims_per_nf.get(nf, 0)

    def entry(self, kind: str, location: str) -> TallyEntry:
        return self._entries.get((kind, location), TallyEntry())

    def format(self, limit: int = 10) -> str:
        lines = [f"{'score':>12}  {'n':>6}  {'conf':>5}  culprit"]
        for kind, location, entry in self.top(limit):
            lines.append(
                f"{entry.score:12.3f}  {entry.count:6d}  "
                f"{entry.mean_confidence:5.2f}  [{kind}] {location}"
            )
        return "\n".join(lines)

    # -- checkpoint payload ----------------------------------------------------

    def to_payload(self) -> dict:
        """Pure-JSON state (sorted keys: payload bytes are canonical)."""
        return {
            "version": _PAYLOAD_VERSION,
            "victims": self.victims,
            "culprits": self.culprits,
            "total_score": self.total_score,
            "victims_per_nf": dict(sorted(self._victims_per_nf.items())),
            "entries": [
                {
                    "kind": kind,
                    "location": location,
                    "score": entry.score,
                    "count": entry.count,
                    "confidence_mass": entry.confidence_mass,
                }
                for (kind, location), entry in sorted(self._entries.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CulpritTally":
        if payload.get("version") != _PAYLOAD_VERSION:
            raise AggregationError(
                f"unsupported tally payload version {payload.get('version')!r}"
            )
        tally = cls()
        tally.victims = int(payload["victims"])
        tally.culprits = int(payload["culprits"])
        tally.total_score = float(payload["total_score"])
        tally._victims_per_nf = {
            nf: int(count) for nf, count in payload["victims_per_nf"].items()
        }
        for raw in payload["entries"]:
            tally._entries[(raw["kind"], raw["location"])] = TallyEntry(
                score=float(raw["score"]),
                count=int(raw["count"]),
                confidence_mass=float(raw["confidence_mass"]),
            )
        return tally

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CulpritTally):
            return NotImplemented
        return self.to_payload() == other.to_payload()
