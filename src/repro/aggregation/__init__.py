"""Causal-pattern aggregation: hierarchies, AutoFocus, two-phase pipeline."""

from repro.aggregation.autofocus import (
    Cluster,
    MultiAutoFocus,
    compress_unidimensional,
    unidimensional_clusters,
)
from repro.aggregation.hierarchy import (
    BinaryPortNode,
    LocationNode,
    PortNode,
    PrefixNode,
    ProtoNode,
    ancestors,
)
from repro.aggregation.patterns import (
    AggregationResult,
    FlowAggregate,
    Pattern,
    PatternAggregator,
)
from repro.aggregation.sketches import (
    BoundedCulpritTally,
    BoundedTallyEntry,
    tally_from_payload,
)
from repro.aggregation.tallies import CulpritTally, TallyEntry

__all__ = [
    "AggregationResult",
    "BinaryPortNode",
    "BoundedCulpritTally",
    "BoundedTallyEntry",
    "Cluster",
    "CulpritTally",
    "FlowAggregate",
    "LocationNode",
    "MultiAutoFocus",
    "Pattern",
    "PatternAggregator",
    "TallyEntry",
    "PortNode",
    "PrefixNode",
    "ProtoNode",
    "ancestors",
    "compress_unidimensional",
    "tally_from_payload",
    "unidimensional_clusters",
]
