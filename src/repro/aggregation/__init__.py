"""Causal-pattern aggregation: hierarchies, AutoFocus, two-phase pipeline."""

from repro.aggregation.autofocus import (
    Cluster,
    MultiAutoFocus,
    compress_unidimensional,
    unidimensional_clusters,
)
from repro.aggregation.hierarchy import (
    BinaryPortNode,
    LocationNode,
    PortNode,
    PrefixNode,
    ProtoNode,
    ancestors,
)
from repro.aggregation.patterns import (
    AggregationResult,
    FlowAggregate,
    Pattern,
    PatternAggregator,
)

__all__ = [
    "AggregationResult",
    "BinaryPortNode",
    "Cluster",
    "FlowAggregate",
    "LocationNode",
    "MultiAutoFocus",
    "Pattern",
    "PatternAggregator",
    "PortNode",
    "PrefixNode",
    "ProtoNode",
    "ancestors",
    "compress_unidimensional",
    "unidimensional_clusters",
]
