"""Dimension hierarchies for pattern aggregation (section 4.4).

Each pattern dimension is a lattice with a root ("any value"):

* **IP addresses** generalise along prefix length 32 → 0,
* **ports** generalise single port → static range (well-known 0-1023 or
  registered/ephemeral 1024-65535) → any — the paper notes its raw HHH
  uses exactly these static ranges (section 6.4),
* **protocols** generalise value → any,
* **locations** (NF instances and traffic sources) generalise
  instance → NF type → any.

Nodes are small frozen dataclasses with ``parent()`` and
``contains(leaf)``; aggregation code never needs to know which dimension
it is working on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import AggregationError
from repro.nfv.packet import ip_to_str


@dataclass(frozen=True, order=True)
class PrefixNode:
    """IPv4 prefix: value is the network address, length in [0, 32]."""

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AggregationError(f"prefix length out of range: {self.length}")
        mask = ((1 << self.length) - 1) << (32 - self.length) if self.length else 0
        if self.value & ~mask & 0xFFFFFFFF:
            raise AggregationError(
                f"prefix {self.value:#x}/{self.length} has host bits set"
            )

    @classmethod
    def leaf(cls, address: int) -> "PrefixNode":
        return cls(value=address, length=32)

    def parent(self) -> Optional["PrefixNode"]:
        if self.length == 0:
            return None
        new_len = self.length - 1
        mask = ((1 << new_len) - 1) << (32 - new_len) if new_len else 0
        return PrefixNode(value=self.value & mask, length=new_len)

    def contains(self, address: int) -> bool:
        if self.length == 0:
            return True
        shift = 32 - self.length
        return (address >> shift) == (self.value >> shift)

    def contains_node(self, other: "PrefixNode") -> bool:
        return other.length >= self.length and self.contains(other.value)

    @property
    def depth(self) -> int:
        return self.length

    def __str__(self) -> str:
        if self.length == 0:
            return "*"
        return f"{ip_to_str(self.value)}/{self.length}"


_WELL_KNOWN = (0, 1023)
_EPHEMERAL = (1024, 65535)


@dataclass(frozen=True, order=True)
class PortNode:
    """Port range node: (lo, hi); a single port has lo == hi."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= 65535:
            raise AggregationError(f"bad port range ({self.lo}, {self.hi})")

    @classmethod
    def leaf(cls, port: int) -> "PortNode":
        return cls(lo=port, hi=port)

    @classmethod
    def any(cls) -> "PortNode":
        return cls(lo=0, hi=65535)

    def parent(self) -> Optional["PortNode"]:
        if (self.lo, self.hi) == (0, 65535):
            return None
        if self.lo == self.hi:
            band = _WELL_KNOWN if self.lo <= _WELL_KNOWN[1] else _EPHEMERAL
            return PortNode(lo=band[0], hi=band[1])
        return PortNode.any()

    def contains(self, port: int) -> bool:
        return self.lo <= port <= self.hi

    def contains_node(self, other: "PortNode") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    @property
    def depth(self) -> int:
        if self.lo == self.hi:
            return 2
        if (self.lo, self.hi) == (0, 65535):
            return 0
        return 1

    def __str__(self) -> str:
        if self.lo == self.hi:
            return str(self.lo)
        if (self.lo, self.hi) == (0, 65535):
            return "*"
        return f"{self.lo}-{self.hi}"


@dataclass(frozen=True, order=True)
class ProtoNode:
    """Protocol dimension: a value or any (-1)."""

    value: int  # -1 means any

    @classmethod
    def leaf(cls, proto: int) -> "ProtoNode":
        return cls(value=proto)

    @classmethod
    def any(cls) -> "ProtoNode":
        return cls(value=-1)

    def parent(self) -> Optional["ProtoNode"]:
        if self.value == -1:
            return None
        return ProtoNode.any()

    def contains(self, proto: int) -> bool:
        return self.value in (-1, proto)

    def contains_node(self, other: "ProtoNode") -> bool:
        return self.value == -1 or self.value == other.value

    @property
    def depth(self) -> int:
        return 0 if self.value == -1 else 1

    def __str__(self) -> str:
        return "*" if self.value == -1 else str(self.value)


@dataclass(frozen=True, order=True)
class LocationNode:
    """NF-set dimension: instance -> NF type -> any.

    ``kind`` is 'instance', 'type', or 'any'.  Instances carry their type
    so generalisation needs no external lookup.
    """

    kind: str
    name: str = ""
    type_name: str = ""

    @classmethod
    def leaf(cls, instance: str, type_name: str) -> "LocationNode":
        return cls(kind="instance", name=instance, type_name=type_name)

    @classmethod
    def any(cls) -> "LocationNode":
        return cls(kind="any")

    def parent(self) -> Optional["LocationNode"]:
        if self.kind == "instance":
            return LocationNode(kind="type", type_name=self.type_name)
        if self.kind == "type":
            return LocationNode.any()
        return None

    def contains_node(self, other: "LocationNode") -> bool:
        if self.kind == "any":
            return True
        if self.kind == "type":
            return other.type_name == self.type_name and other.kind in (
                "instance",
                "type",
            )
        return other.kind == "instance" and other.name == self.name

    @property
    def depth(self) -> int:
        return {"any": 0, "type": 1, "instance": 2}[self.kind]

    def __str__(self) -> str:
        if self.kind == "any":
            return "*"
        if self.kind == "type":
            return f"{self.type_name}:*"
        return self.name


@dataclass(frozen=True, order=True)
class BinaryPortNode:
    """Adaptive port ranges: a binary hierarchy over the 16-bit port space.

    The paper notes its raw HHH "only considers either the static port
    range (1024-65535) or single port numbers" and that *adaptive* port
    ranges would merge e.g. ports 2000-2008 into one pattern (section 6.4).
    This node type provides exactly that: ranges are power-of-two aligned
    blocks, generalising leaf -> /15 -> ... -> the full space, like IP
    prefixes over 16 bits.
    """

    value: int
    length: int  # prefix length over 16 bits; 16 = single port

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 16:
            raise AggregationError(f"port prefix length out of range: {self.length}")
        mask = ((1 << self.length) - 1) << (16 - self.length) if self.length else 0
        if self.value & ~mask & 0xFFFF:
            raise AggregationError(
                f"port block {self.value}/{self.length} has low bits set"
            )

    @classmethod
    def leaf(cls, port: int) -> "BinaryPortNode":
        return cls(value=port, length=16)

    @classmethod
    def any(cls) -> "BinaryPortNode":
        return cls(value=0, length=0)

    def parent(self) -> Optional["BinaryPortNode"]:
        if self.length == 0:
            return None
        new_len = self.length - 1
        mask = ((1 << new_len) - 1) << (16 - new_len) if new_len else 0
        return BinaryPortNode(value=self.value & mask, length=new_len)

    @property
    def lo(self) -> int:
        return self.value

    @property
    def hi(self) -> int:
        return self.value | ((1 << (16 - self.length)) - 1)

    def contains(self, port: int) -> bool:
        return self.lo <= port <= self.hi

    def contains_node(self, other: "BinaryPortNode") -> bool:
        return other.length >= self.length and self.contains(other.value)

    @property
    def depth(self) -> int:
        return self.length

    def __str__(self) -> str:
        if self.length == 16:
            return str(self.value)
        if self.length == 0:
            return "*"
        return f"{self.lo}-{self.hi}"


_ANCESTOR_CACHE: dict = {}


def ancestors(node) -> Tuple[object, ...]:
    """The node itself plus all generalisations up to the dimension root.

    Results are memoised: aggregation walks the same chains millions of
    times, and node construction dominates otherwise.
    """
    cached = _ANCESTOR_CACHE.get(node)
    if cached is not None:
        return cached
    chain: List[object] = [node]
    current = node.parent()
    while current is not None:
        chain.append(current)
        current = current.parent()
    result = tuple(chain)
    _ANCESTOR_CACHE[node] = result
    return result
