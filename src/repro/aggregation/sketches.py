"""Sketch-backed culprit aggregation: flat memory over unbounded runs.

:class:`~repro.aggregation.tallies.CulpritTally` is exact but grows with
the number of *distinct* ``(kind, location)`` culprit identities seen —
fine for hours, wrong for an always-on service where a churning workload
(ephemeral flows, port-scanning sources, rotating tenants) can mint new
identities forever.  :class:`BoundedCulpritTally` caps the entry table at
a fixed ``budget`` using a weighted SpaceSaving sketch [Metwally et al.,
"Efficient computation of frequent and top-k elements in data streams"]:

* while distinct identities fit the budget the tally is **exact** — entry
  for entry equal to the unbounded tally, every ``score_error`` zero;
* over budget, inserting a new identity **evicts the minimum-score
  entry**, and the newcomer inherits the evicted score as both its
  starting mass and its explicit ``score_error`` — the classic
  SpaceSaving overestimate.  Every reported score is then an upper bound
  on the true score, tight to within ``score_error``, and any identity
  whose true accumulated score exceeds the current minimum entry score is
  guaranteed to be present (no heavy hitter is ever silently lost);
* global counters (``victims``, ``culprits``, ``total_score``,
  ``victims_per_nf``) stay exact — they are O(1) and O(#NFs), not
  O(#identities).

Determinism contract (the service checkpoints this state): eviction picks
the minimum ``(score, key)`` with ties broken on the lexically smallest
key, update order is the service's chunk/diagnosis/culprit order, and the
payload round-trips floats exactly — so a crash-restored sketch continues
bit-identically, the same property the exact tally pins.

Error semantics surfaced to operators: per-entry ``score_error`` (and
``count_error``) bound the overestimate of that entry; the tally-level
``floor`` (the largest score ever evicted) bounds the true score of any
*absent* identity.  ``merge`` keeps scores as upper bounds but weakens
per-entry tightness to the floor — merged sketches are for fleet rollups,
not for re-checkpointing mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.aggregation.tallies import CulpritTally, TallyEntry
from repro.core.diagnosis import VictimDiagnosis
from repro.errors import AggregationError

_PAYLOAD_VERSION = 2


@dataclass
class BoundedTallyEntry(TallyEntry):
    """A tally entry plus its SpaceSaving overestimation bounds.

    True score lies in ``[score - score_error, score]``; true count in
    ``[count - count_error, count]``.  Both errors are zero until the
    entry's identity was ever (re)inserted over a full table.
    """

    score_error: float = 0.0
    count_error: int = 0

    @property
    def exact(self) -> bool:
        return self.score_error == 0.0 and self.count_error == 0


class BoundedCulpritTally(CulpritTally):
    """Top-k heavy-hitter culprit tally at a hard entry budget."""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise AggregationError(f"sketch budget must be >= 1: {budget}")
        super().__init__()
        self.budget = budget
        #: Total evictions performed (monitoring: 0 means still exact).
        self.evictions = 0
        #: Largest score ever evicted: upper bound on the true score of
        #: any identity *not* in the table.
        self.floor = 0.0

    # -- accumulation ---------------------------------------------------------

    def _evict_min(self) -> Tuple[float, int, float]:
        """Drop the minimum-score entry; returns its (score, count, mass).

        Ties break on the lexically smallest key so eviction — hence the
        whole sketch state — is a deterministic function of update order.
        """
        key = min(self._entries, key=lambda k: (self._entries[k].score, k))
        entry = self._entries.pop(key)
        self.evictions += 1
        if entry.score > self.floor:
            self.floor = entry.score
        return entry.score, entry.count, entry.confidence_mass

    def update(self, diagnoses: Iterable[VictimDiagnosis]) -> None:
        for diagnosis in diagnoses:
            self.victims += 1
            nf = diagnosis.victim.nf
            self._victims_per_nf[nf] = self._victims_per_nf.get(nf, 0) + 1
            for culprit in diagnosis.culprits:
                key = (culprit.kind, culprit.location)
                entry = self._entries.get(key)
                if entry is None:
                    if len(self._entries) < self.budget:
                        entry = self._entries[key] = BoundedTallyEntry()
                    else:
                        # SpaceSaving: the newcomer takes over the minimum
                        # entry's mass and carries it as explicit error.
                        score, count, mass = self._evict_min()
                        entry = self._entries[key] = BoundedTallyEntry(
                            score=score,
                            count=count,
                            confidence_mass=mass,
                            score_error=score,
                            count_error=count,
                        )
                entry.score += culprit.score
                entry.count += 1
                entry.confidence_mass += culprit.score * culprit.confidence
                self.culprits += 1
                self.total_score += culprit.score

    def merge(self, other: "CulpritTally") -> None:
        """Fold another tally in, then shrink back to the budget.

        Matching identities add scores (and errors); surplus smallest
        entries are dropped with their scores folded into ``floor``.
        The result's present-entry scores remain upper bounds, but
        per-entry errors are no longer individually tight — use merged
        sketches for reporting, not as a resumable running state.
        """
        for key, entry in other._entries.items():
            mine = self._entries.get(key)
            if mine is None:
                mine = self._entries[key] = BoundedTallyEntry()
            mine.score += entry.score
            mine.count += entry.count
            mine.confidence_mass += entry.confidence_mass
            mine.score_error += getattr(entry, "score_error", 0.0)
            mine.count_error += getattr(entry, "count_error", 0)
        for nf, count in other._victims_per_nf.items():
            self._victims_per_nf[nf] = self._victims_per_nf.get(nf, 0) + count
        self.victims += other.victims
        self.culprits += other.culprits
        self.total_score += other.total_score
        if isinstance(other, BoundedCulpritTally):
            self.evictions += other.evictions
            if other.floor > self.floor:
                self.floor = other.floor
        while len(self._entries) > self.budget:
            self._evict_min()

    # -- queries --------------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True while no eviction ever happened: entries equal the
        unbounded tally's, error-free."""
        return self.evictions == 0

    def absent_score_bound(self) -> float:
        """Upper bound on the true score of any identity not tallied."""
        return self.floor

    def format(self, limit: int = 10) -> str:
        lines = [
            f"{'score':>12}  {'±err':>10}  {'n':>6}  {'conf':>5}  culprit"
        ]
        for kind, location, entry in self.top(limit):
            err = getattr(entry, "score_error", 0.0)
            lines.append(
                f"{entry.score:12.3f}  {err:10.3f}  {entry.count:6d}  "
                f"{entry.mean_confidence:5.2f}  [{kind}] {location}"
            )
        if self.evictions:
            lines.append(
                f"(sketch: budget {self.budget}, {self.evictions} evictions,"
                f" absent-score bound {self.floor:.3f})"
            )
        return "\n".join(lines)

    # -- checkpoint payload ----------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "version": _PAYLOAD_VERSION,
            "budget": self.budget,
            "evictions": self.evictions,
            "floor": self.floor,
            "victims": self.victims,
            "culprits": self.culprits,
            "total_score": self.total_score,
            "victims_per_nf": dict(sorted(self._victims_per_nf.items())),
            "entries": [
                {
                    "kind": kind,
                    "location": location,
                    "score": entry.score,
                    "count": entry.count,
                    "confidence_mass": entry.confidence_mass,
                    "score_error": entry.score_error,
                    "count_error": entry.count_error,
                }
                for (kind, location), entry in sorted(self._entries.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BoundedCulpritTally":
        if payload.get("version") != _PAYLOAD_VERSION:
            raise AggregationError(
                f"unsupported sketch payload version {payload.get('version')!r}"
            )
        tally = cls(int(payload["budget"]))
        tally.evictions = int(payload["evictions"])
        tally.floor = float(payload["floor"])
        tally.victims = int(payload["victims"])
        tally.culprits = int(payload["culprits"])
        tally.total_score = float(payload["total_score"])
        tally._victims_per_nf = {
            nf: int(count) for nf, count in payload["victims_per_nf"].items()
        }
        for raw in payload["entries"]:
            tally._entries[(raw["kind"], raw["location"])] = BoundedTallyEntry(
                score=float(raw["score"]),
                count=int(raw["count"]),
                confidence_mass=float(raw["confidence_mass"]),
                score_error=float(raw["score_error"]),
                count_error=int(raw["count_error"]),
            )
        return tally


def tally_from_payload(payload: dict) -> CulpritTally:
    """Reconstruct whichever tally class wrote ``payload``.

    The journal's tally snapshots and the compaction header both carry
    payloads whose ``version`` key identifies the class (1 = exact
    :class:`CulpritTally`, 2 = :class:`BoundedCulpritTally`), so replay
    paths restore the same aggregation semantics the service ran with.
    """
    version = payload.get("version")
    if version == 1:
        return CulpritTally.from_payload(payload)
    if version == _PAYLOAD_VERSION:
        return BoundedCulpritTally.from_payload(payload)
    raise AggregationError(f"unsupported tally payload version {version!r}")
