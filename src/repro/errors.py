"""Exception hierarchy for the Microscope reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to tell configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class TopologyError(ConfigurationError):
    """The NF graph is malformed (cycles, unknown nodes, dangling routes)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TraceError(ReproError):
    """Collected or reconstructed trace data is malformed or inconsistent."""


class ReconstructionError(TraceError):
    """Packet-trace reconstruction from compressed records failed."""


class DiagnosisError(ReproError):
    """The diagnosis engine was asked something it cannot answer."""


class AggregationError(ReproError):
    """Pattern aggregation received malformed causal relations."""


class ServiceError(ReproError):
    """The always-on diagnosis service hit a non-recoverable condition."""


class CheckpointError(ServiceError):
    """No usable checkpoint generation survived validation."""


class StorageError(ServiceError):
    """A durable write failed at the storage layer (ENOSPC, short write).

    Raised by the journal append and checkpoint commit paths after the
    failed commit has been rolled back atomically: the journal is
    truncated back to its pre-append offset and the checkpoint temp file
    is unlinked, so the previous generation remains fully recoverable.
    The service surfaces it instead of retrying — a full disk is an
    operator problem, not a transient.
    """


class TransientError(ServiceError):
    """A retryable stage failure (the service backs off and tries again)."""


class IngestError(ServiceError):
    """Live telemetry ingestion hit a non-recoverable condition."""


class TransportError(TransientError):
    """A telemetry transport operation failed (timeout, disconnect).

    Transient by nature: the feed retries with backoff and reconnects.
    Only after the retry budget is exhausted does it escalate to
    :class:`IngestError`.
    """


class FrameError(TransportError):
    """A wire frame failed validation (bad magic, CRC mismatch, short
    read, oversized length).

    Raised by the :mod:`repro.net.frames` decoder.  A corrupt frame
    poisons the whole byte stream after it — the only safe response is to
    drop the connection and reconnect, which the sender's resume protocol
    turns into a resend from the receiver-acked sequence.
    """


class PeerGone(TransportError):
    """The remote peer disconnected or went silent (EOF, heartbeat
    timeout, connection reset).

    Distinct from :class:`TransportError` proper so retry accounting can
    tell *errors* (garbled frames, injected faults) from *absence* (a
    collector that died or a link that dropped): the feed counts them
    separately in :class:`~repro.ingest.feed.FeedStats` and health
    reports surface dead peers as staleness, not corruption.
    """


class ProtocolError(IngestError):
    """The remote peer violated the wire protocol (unknown frame type in
    a context where skipping is unsafe, an ack regression, a stream the
    receiver never offered).  Non-recoverable by reconnecting: something
    is wrong with the software on one end, not with the network.
    """


class FleetError(ServiceError):
    """The multi-pipeline fleet supervisor hit a non-recoverable condition."""


class ServiceStopped(BaseException):
    """Cooperative wind-down signal for a pipeline running under a supervisor.

    When one pipeline in a fleet crashes, its siblings must stop at their
    next chunk boundary — *between* committed chunks, never inside one —
    so a restarted fleet resumes every journal from a clean prefix.  Like
    :class:`~repro.service.crashsim.SimulatedCrash` this derives from
    :class:`BaseException`: the service's transient-retry machinery catches
    ``Exception`` only, and a stop order must never be absorbed by a retry
    loop.
    """

    def __init__(self, pipeline: str = "") -> None:
        super().__init__(
            f"pipeline {pipeline!r} stopped by its supervisor"
            if pipeline
            else "service stopped by its supervisor"
        )
        self.pipeline = pipeline
