"""Integer-nanosecond timebase used across the simulator and diagnosis code.

All timestamps in this package are integers counting nanoseconds from the
start of a simulation run.  Using integers keeps event ordering exact and
makes property-based tests deterministic; floats appear only in derived
quantities such as rates (packets per second).
"""

from __future__ import annotations

#: One microsecond in nanoseconds.
USEC = 1_000
#: One millisecond in nanoseconds.
MSEC = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def ns_from_us(us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return int(round(us * USEC))


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return int(round(ms * MSEC))


def ns_from_s(s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return int(round(s * SEC))


def us_from_ns(ns: int) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / USEC


def ms_from_ns(ns: int) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MSEC


def s_from_ns(ns: int) -> float:
    """Convert nanoseconds to seconds."""
    return ns / SEC


def pps_from_cost(cost_ns: int) -> float:
    """Packets per second sustained by a fixed per-packet cost.

    ``cost_ns`` is the time one packet takes to process; the inverse is the
    peak rate an NF with that service cost can sustain.
    """
    if cost_ns <= 0:
        raise ValueError(f"per-packet cost must be positive, got {cost_ns}")
    return SEC / cost_ns


def cost_from_pps(rate_pps: float) -> int:
    """Per-packet cost in nanoseconds for a target rate in packets/second."""
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    return max(1, int(round(SEC / rate_pps)))


def format_ns(ns: int) -> str:
    """Render a nanosecond timestamp as a human-friendly string.

    >>> format_ns(1_500)
    '1.500us'
    >>> format_ns(2_300_000)
    '2.300ms'
    """
    if ns < USEC:
        return f"{ns}ns"
    if ns < MSEC:
        return f"{ns / USEC:.3f}us"
    if ns < SEC:
        return f"{ns / MSEC:.3f}ms"
    return f"{ns / SEC:.3f}s"
