"""Deterministic random-number management.

Every stochastic component in the package takes an explicit seed or
``numpy.random.Generator``.  ``substream`` derives independent child
generators from a parent seed and a label, so e.g. the traffic generator and
the fault injector never share a stream and experiments stay reproducible
when one component's draw count changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def generator(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``."""
    return np.random.default_rng(seed)


def substream(seed: int, label: str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a string label.

    The label is hashed so adding a new substream never perturbs existing
    ones.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)
