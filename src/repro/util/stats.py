"""Small statistics helpers shared by the diagnosis engine and baselines.

These are deliberately dependency-light; numpy is used only where it clearly
pays off.  The streaming mean/std tracker implements Welford's algorithm so
abnormality detection ("beyond one standard deviation of recent history",
NetMedic-style) can run over long traces without keeping every sample.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``values``.

    ``pct`` is in [0, 100].  Raises ``ValueError`` on an empty sequence so a
    missing-data bug cannot silently read as "zero latency".
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    value = float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)
    # Interpolation can round an ULP outside the sample range; clamp it.
    return min(max(value, float(ordered[0])), float(ordered[-1]))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points, sorted by value."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(float(v), (i + 1) / n) for i, v in enumerate(ordered)]


@dataclass
class Summary:
    """Five-number-ish summary of a sample, used by experiment reports."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("summary of empty sequence")
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(
            count=len(values),
            mean=mean,
            std=math.sqrt(var),
            minimum=float(min(values)),
            p50=percentile(values, 50.0),
            p99=percentile(values, 99.0),
            maximum=float(max(values)),
        )


class RollingStats:
    """Windowed mean/std over the last ``window`` samples.

    Used for "abnormal if beyond one standard deviation of recent history"
    tests (paper section 4.1).  A fixed-size deque keeps memory bounded; the
    running sums keep updates O(1).
    """

    def __init__(self, window: int = 256) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self._window = window
        self._samples: Deque[float] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def push(self, value: float) -> None:
        """Add a sample, evicting the oldest once the window is full."""
        self._samples.append(value)
        self._sum += value
        self._sum_sq += value * value
        if len(self._samples) > self._window:
            old = self._samples.popleft()
            self._sum -= old
            self._sum_sq -= old * old

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty history")
        return self._sum / len(self._samples)

    @property
    def std(self) -> float:
        if not self._samples:
            raise ValueError("std of empty history")
        n = len(self._samples)
        var = max(0.0, self._sum_sq / n - (self._sum / n) ** 2)
        return math.sqrt(var)

    def is_abnormal(self, value: float, k: float = 1.0) -> bool:
        """True when ``value`` exceeds mean + k * std of the recent history.

        With fewer than two samples there is no meaningful history, so
        nothing is flagged (matching how the paper warms up its detector).
        """
        if len(self._samples) < 2:
            return False
        return value > self.mean + k * self.std


class Welford:
    """Streaming mean/variance over an unbounded sample stream."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty stream")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise ValueError("variance of empty stream")
        if self.count == 1:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def rate_series(
    times_ns: Sequence[int], bin_ns: int, start_ns: int = 0, end_ns: int = 0
) -> List[Tuple[int, float]]:
    """Bin event timestamps into a rate series of (bin start, events/sec).

    Handy for reproducing the paper's throughput/rate plots (Figures 2b, 3c).
    ``end_ns`` defaults to the last event time.
    """
    if bin_ns <= 0:
        raise ValueError(f"bin size must be positive, got {bin_ns}")
    if not times_ns:
        return []
    last = end_ns if end_ns else max(times_ns)
    n_bins = max(1, (last - start_ns + bin_ns - 1) // bin_ns)
    counts = [0] * n_bins
    for t in times_ns:
        if t < start_ns or t > last:
            continue
        idx = min(n_bins - 1, (t - start_ns) // bin_ns)
        counts[idx] += 1
    scale = 1e9 / bin_ns
    return [(start_ns + i * bin_ns, c * scale) for i, c in enumerate(counts)]


def argsort_desc(scores: Iterable[float]) -> List[int]:
    """Indices that sort ``scores`` descending (stable)."""
    pairs = list(enumerate(scores))
    pairs.sort(key=lambda kv: (-kv[1], kv[0]))
    return [idx for idx, _ in pairs]
