"""Shared utilities: timebase, statistics, deterministic RNG, atomic I/O."""

from repro.util.atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_dir,
    sweep_temp_files,
)
from repro.util.retry import RetryPolicy, backoff_delay, retry_call
from repro.util.rng import generator, substream
from repro.util.stats import (
    RollingStats,
    Summary,
    Welford,
    argsort_desc,
    cdf_points,
    percentile,
    rate_series,
)
from repro.util.timebase import (
    MSEC,
    SEC,
    USEC,
    cost_from_pps,
    format_ns,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    pps_from_cost,
    s_from_ns,
    us_from_ns,
)

__all__ = [
    "MSEC",
    "SEC",
    "USEC",
    "RetryPolicy",
    "RollingStats",
    "Summary",
    "backoff_delay",
    "retry_call",
    "Welford",
    "argsort_desc",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "sweep_temp_files",
    "cdf_points",
    "cost_from_pps",
    "format_ns",
    "generator",
    "ms_from_ns",
    "ns_from_ms",
    "ns_from_s",
    "ns_from_us",
    "percentile",
    "pps_from_cost",
    "rate_series",
    "s_from_ns",
    "substream",
    "us_from_ns",
]
