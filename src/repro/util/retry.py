"""Shared retry policy: jittered exponential backoff over an explicit RNG.

Three subsystems retry transient failures the same way — the ingest feed
around transport pulls, the diagnosis service around chunk attempts, and
the network sender around reconnects — and all three need the *same*
determinism property: the backoff jitter comes from a caller-owned
checkpointed RNG, so a crash-restarted process that restores the RNG
state replays the identical delay schedule.  This module is that one
implementation.

The contract that keeps restored runs bit-identical:

* :func:`backoff_delay` draws **exactly one** ``rng.random()`` per call —
  callers checkpoint the RNG's bit-generator state, so the draw count per
  retry is part of the on-disk format and must never change;
* the delay formula is ``min(cap, base * 2**attempt) * (0.5 + u)`` with
  ``u`` uniform in [0, 1) — the exact formula the feed and the service
  shipped with, preserved so existing checkpoints and seeded soak tests
  replay unchanged.

:class:`RetryPolicy` is pure configuration (safe to share across
components); the RNG and the failure accounting stay with the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Type, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered-exponential-backoff parameters (pure config, no state)."""

    #: Re-attempts after the first failure (total attempts = retries + 1).
    max_retries: int = 8
    #: First backoff delay, seconds (doubled each further attempt).
    base_s: float = 0.01
    #: Backoff ceiling, seconds (the exponential saturates here).
    cap_s: float = 1.0


def backoff_delay(policy: RetryPolicy, attempt: int, rng) -> float:
    """Delay before re-attempt ``attempt`` (0-based), jittered by ``rng``.

    Draws exactly one ``rng.random()`` — see the module contract.
    """
    delay = min(policy.cap_s, policy.base_s * (2.0 ** attempt))
    return delay * (0.5 + float(rng.random()))


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    rng,
    sleep: Optional[Callable[[float], None]] = None,
    retry_on: Type[BaseException] = Exception,
    on_failure: Optional[Callable[[BaseException, int], None]] = None,
    on_retry: Optional[Callable[[float], None]] = None,
    give_up: Optional[Callable[[BaseException, int], Exception]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the retry budget is exhausted.

    ``retry_on`` bounds what is retried; anything else — including
    :class:`BaseException` crashes like
    :class:`~repro.service.crashsim.SimulatedCrash` — propagates
    immediately, preserving the crash-only discipline.

    ``on_failure(exc, attempt)`` fires on *every* caught failure (the
    caller's accounting hook, e.g. counting transport failures and
    triggering a reconnect); ``on_retry(delay)`` fires only when a retry
    is actually scheduled, with the jittered delay about to be slept.
    When the budget is gone, ``give_up(exc, attempts)`` builds the
    terminal exception (default: re-raise the last failure).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if on_failure is not None:
                on_failure(exc, attempt)
            if attempt >= policy.max_retries:
                if give_up is not None:
                    raise give_up(exc, attempt + 1) from exc
                raise
            delay = backoff_delay(policy, attempt, rng)
            if on_retry is not None:
                on_retry(delay)
            if sleep is not None:
                sleep(delay)
            attempt += 1
