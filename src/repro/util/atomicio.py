"""Crash-safe file writes shared by persistence and service checkpoints.

The discipline is the standard crash-only one: write the full payload to a
unique temp file in the *same directory* as the target, flush and fsync the
file, ``os.replace`` it over the target (atomic on POSIX within one
filesystem), then fsync the directory so the rename itself is durable.  A
``kill -9`` at any instant leaves either the old file, the new file, or an
orphaned ``*.tmp-*`` that readers ignore — never a torn target.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Optional, Tuple, Union


def fsync_dir(directory: Union[str, Path]) -> None:
    """Flush a directory's metadata (renames, unlinks) to disk."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_payload(handle, payload: bytes) -> None:
    """Single write seam so fault-injection tests can simulate ENOSPC.

    Monkeypatching this to raise :class:`OSError` models a full disk or a
    short write inside :func:`atomic_write_bytes`; the temp file is then
    unlinked and the target is never touched, so callers observe an
    atomically failed commit with the previous content intact.
    """
    handle.write(payload)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    durable: bool = True,
    tear: Optional[Callable[[bytes], Optional[Tuple[bytes, BaseException]]]] = None,
) -> int:
    """Atomically replace ``path`` with ``data``; returns bytes written.

    ``durable=False`` skips the fsyncs (test speed); the replace is still
    atomic.  ``tear`` is a crash-simulation hook: given the payload, it may
    return ``(prefix, crash)`` — the partial prefix is durably written to
    the temp file (never renamed into place) and ``crash`` is then raised,
    modelling a power cut mid-write.  The torn temp file deliberately stays
    behind, exactly like a real crash; orphans are harmless and are swept
    by :func:`sweep_temp_files`.
    """
    path = Path(path)
    payload = data
    crash: Optional[BaseException] = None
    torn = tear(data) if tear is not None else None
    if torn is not None:
        payload, crash = torn
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".tmp-", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            _write_payload(handle, payload)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        if crash is not None:
            raise crash
        os.replace(tmp_name, path)
    except BaseException:
        if crash is None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        raise
    if durable:
        fsync_dir(path.parent)
    return len(payload)


def atomic_write_text(
    path: Union[str, Path], text: str, durable: bool = True
) -> int:
    return atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def sweep_temp_files(directory: Union[str, Path]) -> int:
    """Remove orphaned ``*.tmp-*`` files left by crashes; returns count."""
    removed = 0
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    for entry in directory.iterdir():
        if ".tmp-" in entry.name and entry.is_file():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed
